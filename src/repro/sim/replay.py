"""Traffic/time factorization for batched design-space sweeps.

The engine-grid sweeps re-run :func:`~repro.sim.levels.simulate_hierarchy_run`
for every (code assignment, port provisioning) point even though the
*replacement traffic* — which qubit moves across which boundary, in
what order — is identical across all of them.  PR 5 pinned that
invariance for the reservation model: the caches never observe time,
so their event stream depends only on (capacity, policy, trace).  This
module exploits it:

* :func:`extract_movement_trace` runs the cache machinery **once** per
  (workload, depth, policy) group and records a code-agnostic
  :class:`MovementTrace` — per-gate miss records ``(source level,
  evicted?, cascade length)`` plus every traffic counter;
* :func:`price_movement_trace` replays that trace against one concrete
  :class:`~repro.sim.levels.HierarchyStack`, reproducing the greedy
  port-reservation arithmetic float-for-float, so its
  :class:`~repro.sim.levels.HierarchyEngineResult` is bit-identical to
  a fresh :func:`~repro.sim.levels.simulate_hierarchy_run`;
* :func:`price_movement_trace_batch` prices the trace across **many**
  stacks at once — scalar per config below
  :data:`BATCH_NUMPY_THRESHOLD` configs, a vectorized numpy pass (one
  ``(configs, lanes)`` array per network) above it;
* :func:`price_movement_traces_multi` prices **many traces** — one per
  traffic group, each against its own stacks — in a single pass: the
  variable-length miss and gate streams are padded into one numpy
  batch whose columns are all (group x config) cells of the grid, so
  the per-step interpreter overhead is paid once for the whole design
  space instead of once per group;
* :func:`trace_key` / :meth:`MovementTrace.from_bytes` round-trip a
  trace through a content-addressed blob (see
  :class:`repro.perf.tracecache.TraceCache`): the key folds the
  traffic identity, the stack geometry and
  :data:`TRACE_FORMAT_VERSION`, so a layout change can only ever miss,
  never decode stale bytes wrongly.

The extraction has two implementations: a *specialized* flattened loop
for the four shipped eviction policies (dict-as-recency-order, an
incremental score window, and an O(1) Belady next-use scheme over a
precomputed ``next_pos`` array) and a *generic* fallback that drives
the real :class:`~repro.sim.policies.PolicyCache` objects for any
other registered policy.  Both are pinned equal to each other and to
the retained reference engine by the equivalence tests.

Batching is bypassed — cells fall back to per-cell simulation — for
split-transaction runs with prefetching (``prefetch != "none"``): port
contention feeds back into the victim-exclusion and veto decisions
there, so the traffic is *not* code-invariant.  The same bypass will
apply to any future policy whose decisions observe time (per-level
mixed policies with shared state, noise-coupled residency costs).
"""

from __future__ import annotations

import hashlib
import heapq
import json
import math
from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from ..circuits.circuit import Circuit
from .levels import (
    HierarchyEngineResult,
    HierarchyStack,
    LevelStat,
    _resolve_order,
    _resolve_workload,
)
from .policies import PolicyCache, make_policy, validate_policy

__all__ = [
    "BATCH_NUMPY_THRESHOLD",
    "MULTI_NUMPY_THRESHOLD",
    "MovementTrace",
    "TRACE_FORMAT_VERSION",
    "extract_movement_trace",
    "price_movement_trace",
    "price_movement_trace_batch",
    "price_movement_traces_multi",
    "trace_key",
]

_INF = math.inf

#: Policies with a hand-flattened extraction loop; anything else goes
#: through the generic :class:`~repro.sim.policies.PolicyCache` path.
_SPECIALIZED_POLICIES = frozenset({"lru", "fifo", "score", "belady"})

#: Config count at which the numpy batch pricer overtakes the scalar
#: loop (numpy pays a fixed per-event overhead that only amortizes
#: across enough configurations).
BATCH_NUMPY_THRESHOLD = 32

#: Total (group x config) cell count at which the one-pass multi-trace
#: pricer overtakes per-group pricing.  Its per-step masking overhead
#: is paid once for *all* columns, but it is higher than one group's
#: per-step cost, so tiny grids stay on the per-group engines.
MULTI_NUMPY_THRESHOLD = 24

#: Serialization version of :meth:`MovementTrace.to_bytes` blobs.
#: Folded into every :func:`trace_key`, so a layout change invalidates
#: persisted traces (a cache miss and re-extraction) instead of ever
#: decoding them under the wrong schema.
TRACE_FORMAT_VERSION = 1


# ----------------------------------------------------------------------
# scan programs (per-(circuit, order) flattened schedules, cached)
# ----------------------------------------------------------------------

class _ScanProgram:
    """The flattened scheduled program one extraction scans.

    Everything here is a pure function of (circuit, order) — the gate
    operand tuples and EC durations in scheduled order, the operand
    trace, the touched-qubit set — so it is computed once and cached on
    the circuit instance, shared by every policy and every stack.
    """

    __slots__ = (
        "gate_qubits",
        "gate_ec",
        "gate_ec_tuple",
        "trace",
        "touched",
        "total_ec",
        "_next_pos",
        "_belady_keys",
    )

    def __init__(self, circuit: Circuit, order: Sequence[int]) -> None:
        gates = circuit.gates
        self.gate_qubits: List[Tuple[int, ...]] = [gates[idx].qubits for idx in order]
        self.gate_ec: List[int] = [gates[idx].ec_slots for idx in order]
        self.gate_ec_tuple: Tuple[int, ...] = tuple(self.gate_ec)
        self.trace: List[int] = [q for qubits in self.gate_qubits for q in qubits]
        self.touched: List[int] = circuit.touched_qubits()
        self.total_ec: int = sum(self.gate_ec)
        self._next_pos: Optional[List[int]] = None
        self._belady_keys: Dict[int, List[int]] = {}

    def next_pos(self) -> List[int]:
        """``next_pos[p]``: next position of ``trace[p]`` after ``p``.

        One backward scan gives every Belady next-use query in O(1):
        at a demand access of ``q`` at position ``p`` the next use of
        ``q`` is exactly ``next_pos[p]``.  "Never recurs" is encoded as
        ``len(trace)`` — strictly greater than every finite position,
        so comparisons order exactly like the reference's
        :data:`math.inf` while keeping the array all-int (int keys make
        the Belady heap entries cheap 2-tuples).
        """
        if self._next_pos is None:
            trace = self.trace
            n = len(trace)
            nxt: List[int] = [n] * n
            last: Dict[int, int] = {}
            for p in range(n - 1, -1, -1):
                q = trace[p]
                nxt[p] = last.get(q, n)
                last[q] = p
            self._next_pos = nxt
        return self._next_pos

    def belady_keys(self, span: int) -> List[int]:
        """``-next_pos[p] * span`` — the distance part of a heap key.

        A Belady heap entry pushed at position ``p`` with push counter
        ``seq`` gets the int key ``seq - next_pos[p] * span``; with
        ``span`` exceeding every seq the min-heap pops by descending
        next use, oldest push first.  The distance part depends only on
        the scan program (and ``span``), so it is precomputed here once
        and the hot loop pays a single add per access.
        """
        cache = self._belady_keys
        keys = cache.get(span)
        if keys is None:
            keys = [-nd * span for nd in self.next_pos()]
            cache.clear()  # spans are near-constant; keep one
            cache[span] = keys
        return keys


def _scan_program(circuit: Circuit, order: Sequence[int]) -> _ScanProgram:
    """The cached :class:`_ScanProgram` for (circuit, order).

    Cached on the circuit instance (circuits are immutable once they
    enter the simulator); the key carries the gate count so a circuit
    extended after a run cannot serve a stale program.
    """
    cache = circuit.__dict__.setdefault("_scan_programs", {})
    key = (len(circuit.gates), circuit.n_qubits, tuple(order))
    program = cache.get(key)
    if program is None:
        program = _ScanProgram(circuit, order)
        cache.clear()  # one schedule per circuit is the norm; don't hoard
        cache[key] = program
    return program


# ----------------------------------------------------------------------
# the movement trace
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class MovementTrace:
    """The code-agnostic traffic of one reservation-model run.

    Every miss is three small integers — the level the operand was
    found at (``miss_src``), whether the compute-level insertion
    evicted a resident (``miss_evict``), and how many cascade
    write-backs rippled down the stack (``miss_clen``) — grouped per
    scheduled gate by ``gate_nmiss``.  Together with the per-gate EC
    durations this is *everything* the time model consumes: the
    re-pricer never needs qubit identities, and every cache counter is
    already final (replacement never observes time).
    """

    workload: str
    policy: str
    depth: int
    capacities: Tuple[Optional[int], ...]
    gate_ec: Tuple[int, ...]
    gate_nmiss: Tuple[int, ...]
    miss_src: Tuple[int, ...]
    miss_evict: Tuple[int, ...]
    miss_clen: Tuple[int, ...]
    fetches: Tuple[int, ...]
    writebacks: Tuple[int, ...]
    bottom_hits: int
    level_accesses: Tuple[int, ...]
    level_hits: Tuple[int, ...]
    level_misses: Tuple[int, ...]
    level_evictions: Tuple[int, ...]
    final_occupancy: Tuple[int, ...]
    total_ec: int

    def to_bytes(self) -> bytes:
        """A canonical byte serialization (for invariance pins).

        Two traces are byte-equal iff every field is equal, so the
        PR 5 "traffic is code-agnostic" invariant is assertable as a
        single ``bytes`` comparison across code assignments.
        """
        payload = {
            "workload": self.workload,
            "policy": self.policy,
            "depth": self.depth,
            "capacities": list(self.capacities),
            "gate_ec": list(self.gate_ec),
            "gate_nmiss": list(self.gate_nmiss),
            "miss_src": list(self.miss_src),
            "miss_evict": list(self.miss_evict),
            "miss_clen": list(self.miss_clen),
            "fetches": list(self.fetches),
            "writebacks": list(self.writebacks),
            "bottom_hits": self.bottom_hits,
            "level_accesses": list(self.level_accesses),
            "level_hits": list(self.level_hits),
            "level_misses": list(self.level_misses),
            "level_evictions": list(self.level_evictions),
            "final_occupancy": list(self.final_occupancy),
            "total_ec": self.total_ec,
        }
        return json.dumps(
            payload, sort_keys=True, separators=(",", ":")
        ).encode("ascii")

    @classmethod
    def from_bytes(cls, blob: bytes) -> "MovementTrace":
        """Rebuild a trace from its :meth:`to_bytes` serialization.

        Strict by construction: after reconstructing the dataclass the
        round-trip ``to_bytes()`` must reproduce ``blob`` exactly, so a
        blob with missing/extra/retyped fields (e.g. written by a
        different layout, or bit-flipped into other valid JSON) raises
        :class:`ValueError` instead of yielding a trace that prices
        differently.  Cache layers treat that error as a miss.
        """
        try:
            payload = json.loads(blob.decode("ascii"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise ValueError(f"not a serialized MovementTrace: {exc}") from exc
        if not isinstance(payload, dict):
            raise ValueError("not a serialized MovementTrace: not an object")
        tuple_fields = (
            "capacities", "gate_ec", "gate_nmiss", "miss_src", "miss_evict",
            "miss_clen", "fetches", "writebacks", "level_accesses",
            "level_hits", "level_misses", "level_evictions",
            "final_occupancy",
        )
        fields = dict(payload)
        for name in tuple_fields:
            value = fields.get(name)
            if not isinstance(value, list):
                raise ValueError(
                    f"not a serialized MovementTrace: field {name!r} is "
                    "missing or not a list"
                )
            fields[name] = tuple(value)
        try:
            trace = cls(**fields)
        except TypeError as exc:
            raise ValueError(f"not a serialized MovementTrace: {exc}") from exc
        if trace.to_bytes() != blob:
            raise ValueError(
                "not a canonical MovementTrace serialization (field types "
                "or ordering differ from to_bytes output)"
            )
        return trace

    @property
    def n_misses(self) -> int:
        return len(self.miss_src)


def trace_key(
    traffic_token: str,
    depth: int,
    capacities: Sequence[Optional[int]],
) -> str:
    """Content address of one movement trace in a trace cache.

    ``traffic_token`` is the traffic-group identity (the engine grid
    passes :func:`repro.core.design_space.engine_traffic_key`, which
    already folds every traffic axis plus the package version); depth
    and per-level capacities pin the stack geometry the trace was
    extracted against, and :data:`TRACE_FORMAT_VERSION` pins the blob
    layout — bumping it orphans (never misreads) old blobs.
    """
    payload = json.dumps(
        {
            "v": TRACE_FORMAT_VERSION,
            "traffic": traffic_token,
            "depth": depth,
            "capacities": list(capacities),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("ascii")).hexdigest()[:40]


# ----------------------------------------------------------------------
# extraction
# ----------------------------------------------------------------------

def extract_movement_trace(
    stack: HierarchyStack,
    workload: Union[Circuit, str],
    policy: str = "lru",
    *,
    window: Optional[int] = None,
    fetch: str = "optimized",
    order: Optional[Sequence[int]] = None,
) -> MovementTrace:
    """Run the replacement machinery once; return the movement trace.

    Accepts the same workload/scheduling arguments as
    :func:`~repro.sim.levels.simulate_hierarchy_run` (reservation model
    only — split-transaction traffic with prefetching is time-coupled
    and cannot be factored).  Only the *geometry* of ``stack`` matters
    (depth and per-level capacities); its codes and port provisioning
    are deliberately ignored, which is the whole point: one trace
    prices every code assignment of the same shape.
    """
    circuit = _resolve_workload(workload)
    if not circuit.gates:
        raise ValueError("cannot simulate an empty circuit")
    validate_policy(policy)
    order = _resolve_order(circuit, stack.levels[0].capacity, window, fetch, order)
    return _extract(stack, circuit, policy, _scan_program(circuit, order))


def _extract(
    stack: HierarchyStack,
    circuit: Circuit,
    policy: str,
    program: _ScanProgram,
) -> MovementTrace:
    """Dispatch to the flattened or the generic extraction loop."""
    if policy in _SPECIALIZED_POLICIES:
        return _extract_specialized(stack, circuit, policy, program)
    return _extract_generic(stack, circuit, policy, program)


def _trace_from_state(
    stack: HierarchyStack,
    circuit: Circuit,
    policy: str,
    program: _ScanProgram,
    gate_nmiss: List[int],
    miss_src: List[int],
    miss_evict: List[int],
    miss_clen: List[int],
    fetches: List[int],
    writebacks: List[int],
    bottom_hits: int,
    accesses: List[int],
    hits: List[int],
    misses: List[int],
    evictions: List[int],
    location: Dict[int, int],
) -> MovementTrace:
    """Assemble the :class:`MovementTrace` from an extraction's state."""
    occupancy = [0] * stack.depth
    for lvl in location.values():
        occupancy[lvl] += 1
    return MovementTrace(
        workload=circuit.name or f"circuit-{circuit.n_qubits}q",
        policy=policy,
        depth=stack.depth,
        capacities=tuple(level.capacity for level in stack.levels),
        gate_ec=program.gate_ec_tuple,
        gate_nmiss=tuple(gate_nmiss),
        miss_src=tuple(miss_src),
        miss_evict=tuple(miss_evict),
        miss_clen=tuple(miss_clen),
        fetches=tuple(fetches),
        writebacks=tuple(writebacks),
        bottom_hits=bottom_hits,
        level_accesses=tuple(accesses),
        level_hits=tuple(hits),
        level_misses=tuple(misses),
        level_evictions=tuple(evictions),
        final_occupancy=tuple(occupancy),
        total_ec=program.total_ec,
    )


def _extract_specialized(
    stack: HierarchyStack,
    circuit: Circuit,
    policy: str,
    program: _ScanProgram,
) -> MovementTrace:
    """The flattened extraction loop for the four shipped policies.

    Replicates :class:`~repro.sim.policies.PolicyCache` plus the
    shipped policy classes exactly — one insertion-ordered dict per
    level doubles as resident set and recency order (hits reinsert,
    matching ``OrderedDict.move_to_end``), the score window slides
    incrementally, and Belady reads next uses from the scan program's
    ``next_pos`` array instead of bisecting (a demand access at
    position ``p`` *is* an occurrence of its qubit, and a cascaded
    victim cannot have recurred since its last touch — the occurrence
    would have been a demand access pulling it up — so cached next
    uses stay exact all the way down the stack).

    The loop records only the per-miss ``(src, evicted, cascade)``
    triples; every access/hit/traffic counter is derived from them
    afterwards (see :func:`_trace_from_misses`), which keeps counter
    bookkeeping entirely out of the hot path.
    """
    bottom = stack.depth - 1
    caps = [level.capacity for level in stack.levels[:-1]]
    n_finite = len(caps)
    trace = program.trace
    n = len(trace)
    orders: List[Dict[int, None]] = [{} for _ in range(n_finite)]
    refresh_on_hit = policy != "fifo"
    track_nu = policy == "belady"
    heappush = heapq.heappush
    heappop = heapq.heappop
    heapify = heapq.heapify

    # --- per-policy victim state -------------------------------------
    # Belady: one lazily-pruned max-heap per level over int-keyed
    # 2-tuples ``(seq - dist * span, q)`` where ``dist`` is the next
    # use cached at the qubit's last compute-level access, ``seq`` a
    # monotone push counter and ``span`` exceeds every seq — the
    # min-heap then pops by descending next use, oldest push first,
    # which is the reference scan's LRU-first tie-break (every recency
    # refresh is accompanied by a push; finite next uses are globally
    # unique, so real ties only arise among never-used-again qubits,
    # where push order *is* recency order).  An entry is current iff
    # ``q`` is resident at the level it was pushed for and the entry
    # *is* the latest push for ``q`` (``cur_key[q]`` matches; seq makes
    # keys globally unique): a next use can only change at a
    # compute-level access of ``q`` — where it strictly increases and a
    # fresh entry is pushed — and every inter-level move pushes into
    # the destination heap, so the latest push always lives in the heap
    # of the qubit's current level.  ``keybase`` precomputes the
    # ``-dist * span`` part per trace position (a cascaded victim's
    # next use carries down unchanged — it cannot have recurred since
    # its last touch, the occurrence would have been a demand access
    # pulling it up — so ``qkb[q]`` simply remembers the base from the
    # last compute-level access).
    keybase: Sequence[int] = ()
    qkb: List[int] = []
    cur_key: List[int] = []
    bheaps: List[List[Tuple[int, int]]] = [[] for _ in range(n_finite)]
    bseq = 0
    # span must exceed the total push count (≤ depth pushes per trace
    # position); a depth-independent value keeps the precomputed key
    # bases shared across stacks of different depths.
    span = n * max(stack.depth, 64) + 1
    if track_nu:
        keybase = program.belady_keys(span)
        qkb = [0] * circuit.n_qubits
        cur_key = [0] * circuit.n_qubits
    # Score: the reference keeps one sliding window per level, but the
    # window content is a pure function of the sync position and every
    # victim call syncs its level to the current operand position — so
    # all levels always observe identical counts, and one shared
    # window suffices.
    window = 256  # ScorePolicy's default lookahead
    wpos = -1
    counts: List[int] = []
    if policy == "score":
        counts = [0] * circuit.n_qubits
        for q in trace[:window]:
            counts[q] += 1

    def victim_recency(i, pos, pinned):
        d = orders[i]
        if not pinned:
            return next(iter(d))
        for q in d:
            if q not in pinned:
                return q
        return next(iter(d))  # unsatisfiable pin: fall back

    def victim_score(i, pos, pinned):
        nonlocal wpos
        while wpos < pos:  # slide the window to cover pos+1..pos+window
            wpos += 1
            counts[trace[wpos]] -= 1
            entering = wpos + window
            if entering < n:
                counts[trace[entering]] += 1
        best = None
        best_score = None
        for q in orders[i]:  # LRU-first iteration breaks ties
            if q in pinned:
                continue
            score = counts[q]
            if best_score is None or score < best_score:
                best, best_score = q, score
                if score == 0:
                    break
        if best is None:
            return next(iter(orders[i]))
        return best

    def victim_belady(i, pos, pinned):
        h = bheaps[i]
        d = orders[i]
        if len(h) > (len(d) << 2) + 64:
            # Compact: stale entries otherwise accumulate and deepen
            # every subsequent sift (the heap is lazily pruned).
            h[:] = [e for e in h if cur_key[e[1]] == e[0] and e[1] in d]
            heapify(h)
        stash = None
        while h:
            key, q = heappop(h)
            if q not in d or cur_key[q] != key:
                continue  # stale: the qubit moved since this push
            if q in pinned:
                if stash is None:
                    stash = []
                stash.append((key, q))
                continue
            if stash:
                for e in stash:
                    heappush(h, e)
            return q
        if stash:  # unsatisfiable pin: fall back like the scan
            for e in stash:
                heappush(h, e)
        return next(iter(d))

    select_victim = {
        "lru": victim_recency,
        "fifo": victim_recency,
        "score": victim_score,
        "belady": victim_belady,
    }[policy]

    # --- the scan ----------------------------------------------------
    location = [-1] * circuit.n_qubits
    for q in program.touched:
        location[q] = bottom
    gate_nmiss: List[int] = []
    miss_src: List[int] = []
    miss_evict: List[int] = []
    miss_clen: List[int] = []
    append_nmiss = gate_nmiss.append
    append_src = miss_src.append
    append_evict = miss_evict.append
    append_clen = miss_clen.append
    d0 = orders[0]
    cap0 = caps[0]
    h0 = bheaps[0]
    pos = 0
    # Two copies of the scan so the per-access policy checks stay out
    # of the inner loop: the Belady variant threads the heap pushes,
    # the recency/score variant only maintains the ordered dicts.
    if track_nu:
        for qubits in program.gate_qubits:
            nmiss = 0
            j = 0
            for q in qubits:
                src = location[q]
                if src == 0:
                    # Guaranteed hit at the compute level.
                    del d0[q]
                    d0[q] = None
                    kb = keybase[pos]
                    qkb[q] = kb
                    key = bseq + kb
                    cur_key[q] = key
                    heappush(h0, (key, q))
                    bseq += 1
                    j += 1
                    pos += 1
                    continue
                if src != bottom:
                    del orders[src][q]
                evicted = None
                if len(d0) >= cap0:
                    # The operands already issued for this gate are
                    # pinned (they cannot be teleported away mid-gate).
                    evicted = select_victim(0, pos, qubits[:j])
                    del d0[evicted]
                d0[q] = None
                kb = keybase[pos]
                qkb[q] = kb
                key = bseq + kb
                cur_key[q] = key
                heappush(h0, (key, q))
                bseq += 1
                location[q] = 0
                clen = 0
                if evicted is not None:
                    location[evicted] = 1
                    victim = evicted
                    lvl = 1
                    while lvl < bottom:
                        d = orders[lvl]
                        bumped = None
                        if len(d) >= caps[lvl]:
                            bumped = select_victim(lvl, pos, ())
                            del d[bumped]
                        d[victim] = None
                        # The victim's cached next use carries down
                        # unchanged (see the invariant above).
                        key = bseq + qkb[victim]
                        cur_key[victim] = key
                        heappush(bheaps[lvl], (key, victim))
                        bseq += 1
                        if bumped is None:
                            break
                        location[bumped] = lvl + 1
                        victim = bumped
                        lvl += 1
                        clen += 1
                append_src(src)
                append_evict(1 if evicted is not None else 0)
                append_clen(clen)
                nmiss += 1
                j += 1
                pos += 1
            append_nmiss(nmiss)
    else:
        for qubits in program.gate_qubits:
            nmiss = 0
            j = 0
            for q in qubits:
                src = location[q]
                if src == 0:
                    # Guaranteed hit at the compute level.
                    if refresh_on_hit:
                        del d0[q]
                        d0[q] = None
                    j += 1
                    pos += 1
                    continue
                if src != bottom:
                    del orders[src][q]
                evicted = None
                if len(d0) >= cap0:
                    # The operands already issued for this gate are
                    # pinned (they cannot be teleported away mid-gate).
                    evicted = select_victim(0, pos, qubits[:j])
                    del d0[evicted]
                d0[q] = None
                location[q] = 0
                clen = 0
                if evicted is not None:
                    location[evicted] = 1
                    victim = evicted
                    lvl = 1
                    while lvl < bottom:
                        d = orders[lvl]
                        bumped = None
                        if len(d) >= caps[lvl]:
                            bumped = select_victim(lvl, pos, ())
                            del d[bumped]
                        d[victim] = None
                        if bumped is None:
                            break
                        location[bumped] = lvl + 1
                        victim = bumped
                        lvl += 1
                        clen += 1
                append_src(src)
                append_evict(1 if evicted is not None else 0)
                append_clen(clen)
                nmiss += 1
                j += 1
                pos += 1
            append_nmiss(nmiss)

    occupancy = [0] * stack.depth
    for q in program.touched:
        occupancy[location[q]] += 1
    return _trace_from_misses(
        stack,
        circuit,
        policy,
        program,
        gate_nmiss,
        miss_src,
        miss_evict,
        miss_clen,
        occupancy,
    )


def _trace_from_misses(
    stack: HierarchyStack,
    circuit: Circuit,
    policy: str,
    program: _ScanProgram,
    gate_nmiss: List[int],
    miss_src: List[int],
    miss_evict: List[int],
    miss_clen: List[int],
    occupancy: List[int],
) -> MovementTrace:
    """Derive every traffic counter from the per-miss records.

    The scan path of ``_run_reservation`` fixes each counter as a pure
    function of the miss stream: a miss from ``src`` passes through
    (and is counted a miss at) every level ``k < src`` above its hop
    path, is found at ``src`` (a ``lookup_remove`` hit below the
    backing store, a bottom hit otherwise), and its cascade writes back
    through levels ``1..clen`` — which also pins ``evictions[k] ==
    writebacks[k]`` for ``k >= 1`` and ``evictions[0] ==
    writebacks[0]`` (every compute-level eviction pairs with exactly
    one write-back).
    """
    bottom = stack.depth - 1
    n_finite = bottom
    n_misses = len(miss_src)
    src_count = [0] * (bottom + 1)
    for s, cnt in Counter(miss_src).items():
        src_count[s] = cnt
    clen_count = [0] * (bottom + 1)
    for c, cnt in Counter(miss_clen).items():
        clen_count[c] = cnt
    evicted0 = sum(miss_evict)
    accesses = [0] * n_finite
    hits = [0] * n_finite
    misses = [0] * n_finite
    evictions = [0] * n_finite
    fetches = [0] * n_finite
    writebacks = [0] * n_finite
    accesses[0] = len(program.trace)
    misses[0] = n_misses
    hits[0] = accesses[0] - n_misses
    evictions[0] = evicted0
    writebacks[0] = evicted0
    fetches[0] = n_misses
    for k in range(1, n_finite):
        through = sum(src_count[k + 1:])  # searched past this level
        found = src_count[k]  # lookup_remove hits
        accesses[k] = through + found
        misses[k] = through
        hits[k] = found
        fetches[k] = through
        # clen >= k: the cascade reached (and wrote back through) k.
        bumped = sum(clen_count[k:])
        writebacks[k] = bumped
        evictions[k] = bumped
    return MovementTrace(
        workload=circuit.name or f"circuit-{circuit.n_qubits}q",
        policy=policy,
        depth=stack.depth,
        capacities=tuple(level.capacity for level in stack.levels),
        gate_ec=program.gate_ec_tuple,
        gate_nmiss=tuple(gate_nmiss),
        miss_src=tuple(miss_src),
        miss_evict=tuple(miss_evict),
        miss_clen=tuple(miss_clen),
        fetches=tuple(fetches),
        writebacks=tuple(writebacks),
        bottom_hits=src_count[bottom],
        level_accesses=tuple(accesses),
        level_hits=tuple(hits),
        level_misses=tuple(misses),
        level_evictions=tuple(evictions),
        final_occupancy=tuple(occupancy),
        total_ec=program.total_ec,
    )


def _extract_generic(
    stack: HierarchyStack,
    circuit: Circuit,
    policy: str,
    program: _ScanProgram,
) -> MovementTrace:
    """Extraction through the real policy objects (any registered
    policy).  Identical event stream to ``_run_reservation`` with the
    port arithmetic deleted."""
    bottom = stack.depth - 1
    trace = program.trace
    caches = [
        PolicyCache(level.capacity, make_policy(policy), trace)
        for level in stack.levels[:-1]
    ]
    n_finite = len(caches)
    fetches = [0] * n_finite
    writebacks = [0] * n_finite
    bottom_hits = 0
    location = {q: bottom for q in program.touched}
    gate_nmiss: List[int] = []
    miss_src: List[int] = []
    miss_evict: List[int] = []
    miss_clen: List[int] = []
    pos = 0
    for qubits in program.gate_qubits:
        nmiss = 0
        issued: Set[int] = set()
        for q in qubits:
            src = location[q]
            if src == 0:
                caches[0].access_evicting(q, pos)  # guaranteed hit
                issued.add(q)
                pos += 1
                continue
            for k in range(1, src):
                caches[k].record_miss()
            if src == bottom:
                bottom_hits += 1
            else:
                caches[src].lookup_remove(q, pos)
            for k in range(src - 1, 0, -1):
                fetches[k] += 1
            _, evicted = caches[0].access_evicting(q, pos, issued)
            location[q] = 0
            issued.add(q)
            fetches[0] += 1
            clen = 0
            if evicted is not None:
                writebacks[0] += 1
                location[evicted] = 1
                victim = evicted
                lvl = 1
                while lvl < bottom:
                    bumped = caches[lvl].insert(victim, pos)
                    if bumped is None:
                        break
                    writebacks[lvl] += 1
                    location[bumped] = lvl + 1
                    victim = bumped
                    lvl += 1
                    clen += 1
            miss_src.append(src)
            miss_evict.append(1 if evicted is not None else 0)
            miss_clen.append(clen)
            nmiss += 1
            pos += 1
        gate_nmiss.append(nmiss)

    stats = [cache.stats for cache in caches]
    return _trace_from_state(
        stack,
        circuit,
        policy,
        program,
        gate_nmiss,
        miss_src,
        miss_evict,
        miss_clen,
        fetches,
        writebacks,
        bottom_hits,
        [s.accesses for s in stats],
        [s.hits for s in stats],
        [s.misses for s in stats],
        [s.evictions for s in stats],
        location,
    )


# ----------------------------------------------------------------------
# pricing
# ----------------------------------------------------------------------

def _check_geometry(trace: MovementTrace, stack: HierarchyStack) -> None:
    if stack.depth != trace.depth or (
        tuple(level.capacity for level in stack.levels) != trace.capacities
    ):
        raise ValueError(
            "stack geometry does not match the movement trace: the "
            f"trace was extracted at depth {trace.depth} / capacities "
            f"{trace.capacities}, the pricing stack is depth "
            f"{stack.depth} / capacities "
            f"{tuple(lv.capacity for lv in stack.levels)} — traffic is "
            "only invariant across stacks of equal shape"
        )


def price_movement_trace(
    trace: MovementTrace, stack: HierarchyStack
) -> HierarchyEngineResult:
    """Replay ``trace`` against one stack's codes and port widths.

    Reproduces the greedy reservation arithmetic exactly: one plain
    float heap of lane free-times per network (the reference server's
    lane/version entries only tie-break equal floats, which are
    interchangeable), ``start = max(free, ready)``, lanes held through
    ``start + duration + hold``.  Every output float is bit-identical
    to :func:`~repro.sim.levels.simulate_hierarchy_run` on the same
    cell.
    """
    _check_geometry(trace, stack)
    networks = stack.networks()
    demote = [net.demote_time_s for net in networks]
    promote = [net.promote_time_s for net in networks]
    heaps = [[0.0] * max(1, round(net.effective_concurrency)) for net in networks]
    heapreplace = heapq.heapreplace
    top_op = stack.levels[0].op_time_s
    d0 = demote[0]
    p0 = promote[0]
    h0 = heaps[0]
    misses = zip(trace.miss_src, trace.miss_evict, trace.miss_clen)
    next_miss = misses.__next__
    compute_free = 0.0
    transfer_wait = 0.0
    compute_time = 0.0
    for ec, nmiss in zip(trace.gate_ec, trace.gate_nmiss):
        duration = ec * top_op
        compute_time += duration
        if not nmiss:
            # No arrivals: start = max(compute_free, 0.0) is just
            # compute_free (times never go negative).
            compute_free += duration
            continue
        arrivals = 0.0
        for _ in range(nmiss):
            src, ev, clen = next_miss()
            prev = 0.0
            if src > 1:
                # Depth 3 dominates real grids: unroll its single hop.
                if src == 2:
                    h = heaps[1]
                    free = h[0]
                    prev = (free if free > 0.0 else 0.0) + demote[1]
                    heapreplace(h, prev)
                else:
                    for k in range(src - 1, 0, -1):
                        h = heaps[k]
                        free = h[0]
                        start = free if free > prev else prev
                        prev = start + demote[k]
                        heapreplace(h, prev)
            free = h0[0]
            start = free if free > prev else prev
            arrival = start + d0
            if ev:
                # The paired write-back holds the arrival port
                # (busy = start + demote + promote = arrival + promote,
                # matching the reference's left-associated sum).
                available = arrival + p0
                heapreplace(h0, available)
                if clen == 1:
                    h = heaps[1]
                    free = h[0]
                    start2 = free if free > available else available
                    heapreplace(h, start2 + promote[1])
                elif clen:
                    for lvl in range(1, clen + 1):
                        h = heaps[lvl]
                        free = h[0]
                        start2 = free if free > available else available
                        available = start2 + promote[lvl]
                        heapreplace(h, available)
            else:
                heapreplace(h0, arrival)
            if arrival > arrivals:
                arrivals = arrival
        start = compute_free if compute_free > arrivals else arrivals
        if arrivals > compute_free:
            transfer_wait += arrivals - compute_free
        compute_free = start + duration

    return _result_from_trace(trace, stack, compute_free, compute_time, transfer_wait)


def _result_from_trace(
    trace: MovementTrace,
    stack: HierarchyStack,
    total_time: float,
    compute_time: float,
    transfer_wait: float,
) -> HierarchyEngineResult:
    level_stats = [
        LevelStat(
            name=level.name,
            capacity=level.capacity,
            accesses=trace.level_accesses[i],
            hits=trace.level_hits[i],
            misses=trace.level_misses[i],
            evictions=trace.level_evictions[i],
            final_occupancy=trace.final_occupancy[i],
        )
        for i, level in enumerate(stack.levels[:-1])
    ]
    bottom_level = stack.levels[-1]
    level_stats.append(LevelStat(
        name=bottom_level.name,
        capacity=None,
        accesses=trace.bottom_hits,
        hits=trace.bottom_hits,
        misses=0,
        evictions=0,
        final_occupancy=trace.final_occupancy[-1],
    ))
    serial_bottom = trace.total_ec * bottom_level.op_time_s
    return HierarchyEngineResult(
        workload=trace.workload,
        policy=trace.policy,
        depth=stack.depth,
        total_time_s=total_time,
        serial_bottom_time_s=serial_bottom,
        compute_time_s=compute_time,
        transfer_wait_s=transfer_wait,
        level_stats=tuple(level_stats),
        fetches=tuple(trace.fetches),
        writebacks=tuple(trace.writebacks),
    )


def price_movement_trace_batch(
    trace: MovementTrace,
    stacks: Sequence[HierarchyStack],
    engine: str = "auto",
) -> List[HierarchyEngineResult]:
    """Price one movement trace across many stacks in one pass.

    ``engine`` selects the arithmetic backend: ``"scalar"`` loops
    :func:`price_movement_trace` per stack, ``"numpy"`` vectorizes
    every port reservation across all configurations at once (one
    ``(configs, max_lanes)`` free-time array per network, inf-padded
    for narrower configs), ``"auto"`` picks numpy from
    :data:`BATCH_NUMPY_THRESHOLD` configs up.  All backends are
    bit-identical: the vector ops are the same IEEE-754 additions and
    max/argmin selections the scalar heap performs.
    """
    if engine not in ("auto", "scalar", "numpy"):
        raise ValueError(
            f"unknown pricing engine {engine!r}; use 'auto', 'scalar' "
            "or 'numpy'"
        )
    stacks = list(stacks)
    for stack in stacks:
        _check_geometry(trace, stack)
    if engine == "auto":
        engine = "numpy" if len(stacks) >= BATCH_NUMPY_THRESHOLD else "scalar"
    if engine == "scalar":
        return [price_movement_trace(trace, stack) for stack in stacks]
    return _price_batch_numpy(trace, stacks)


def _price_batch_numpy(
    trace: MovementTrace, stacks: List[HierarchyStack]
) -> List[HierarchyEngineResult]:
    import numpy as np

    n_cfg = len(stacks)
    n_nets = trace.depth - 1
    demote = np.empty((n_nets, n_cfg))
    promote = np.empty((n_nets, n_cfg))
    lanes = [[0] * n_cfg for _ in range(n_nets)]
    for c, stack in enumerate(stacks):
        for k, net in enumerate(stack.networks()):
            demote[k, c] = net.demote_time_s
            promote[k, c] = net.promote_time_s
            lanes[k][c] = max(1, round(net.effective_concurrency))
    # One (configs, lanes) free-time array per network; configs with
    # fewer lanes are padded with +inf so argmin never selects a lane
    # that does not exist.
    free_t = []
    for k in range(n_nets):
        width = max(lanes[k])
        arr = np.full((n_cfg, width), np.inf)
        for c in range(n_cfg):
            arr[c, : lanes[k][c]] = 0.0
        free_t.append(arr)
    top_op = np.array([stack.levels[0].op_time_s for stack in stacks])
    rows = np.arange(n_cfg)

    def reserve(k: int, ready, duration, hold=None):
        """The greedy reservation, vectorized across configs.

        Returns the per-config start times.  ``argmin`` picks each
        config's earliest-free lane (ties are interchangeable — equal
        floats), exactly the scalar heap's pop-min.
        """
        arr = free_t[k]
        lane = arr.argmin(axis=1)
        free = arr[rows, lane]
        start = np.maximum(free, ready)
        busy = start + duration
        if hold is not None:
            busy = busy + hold
        arr[rows, lane] = busy
        return start

    d0 = demote[0]
    p0 = promote[0]
    zero = np.zeros(n_cfg)
    compute_free = np.zeros(n_cfg)
    transfer_wait = np.zeros(n_cfg)
    compute_time = np.zeros(n_cfg)
    msrc = trace.miss_src
    mev = trace.miss_evict
    mcl = trace.miss_clen
    mi = 0
    for ec, nmiss in zip(trace.gate_ec, trace.gate_nmiss):
        arrivals = zero
        for _ in range(nmiss):
            src = msrc[mi]
            ev = mev[mi]
            clen = mcl[mi]
            mi += 1
            prev = zero
            for k in range(src - 1, 0, -1):
                start = reserve(k, prev, demote[k])
                prev = start + demote[k]
            if ev:
                start = reserve(0, prev, d0, p0)
                arrival = start + d0
                available = arrival + p0
                for lvl in range(1, clen + 1):
                    start2 = reserve(lvl, available, promote[lvl])
                    available = start2 + promote[lvl]
            else:
                start = reserve(0, prev, d0)
                arrival = start + d0
            arrivals = np.maximum(arrivals, arrival)
        start = np.maximum(compute_free, arrivals)
        delta = arrivals - compute_free
        # Adding 0.0 where there was no wait preserves bits (the
        # accumulators never go negative, so x + 0.0 == x exactly).
        transfer_wait += np.where(delta > 0.0, delta, 0.0)
        duration = ec * top_op
        compute_free = start + duration
        compute_time = compute_time + duration

    return [
        _result_from_trace(
            trace,
            stack,
            float(compute_free[c]),
            float(compute_time[c]),
            float(transfer_wait[c]),
        )
        for c, stack in enumerate(stacks)
    ]


def price_movement_traces_multi(
    groups: Sequence[Tuple[MovementTrace, Sequence[HierarchyStack]]],
    engine: str = "auto",
) -> List[List[HierarchyEngineResult]]:
    """Price many traffic groups' traces in one pass over the grid.

    ``groups`` pairs each movement trace with the stacks it prices
    (every stack must match its trace's geometry); the return value is
    one result list per group, in order — exactly
    ``[price_movement_trace_batch(t, s) for t, s in groups]``, and
    pinned bit-identical to it.

    ``engine="grouped"`` runs that per-group loop; ``"numpy"`` pads the
    variable-length miss and gate streams into one structured batch
    whose columns are *all* (group x config) cells and replays them in
    a single vectorized pass (see :func:`_price_multi_numpy`), so the
    whole design space pays the per-step interpreter overhead once
    instead of once per traffic group; ``"auto"`` picks the one-pass
    engine from :data:`MULTI_NUMPY_THRESHOLD` total cells (and at
    least two groups) up.
    """
    if engine not in ("auto", "grouped", "numpy"):
        raise ValueError(
            f"unknown pricing engine {engine!r}; use 'auto', 'grouped' "
            "or 'numpy'"
        )
    prepared: List[Tuple[MovementTrace, List[HierarchyStack]]] = []
    for trace, stacks in groups:
        stacks = list(stacks)
        for stack in stacks:
            _check_geometry(trace, stack)
        prepared.append((trace, stacks))
    n_cells = sum(len(stacks) for _, stacks in prepared)
    if engine == "auto":
        pooled = len(prepared) >= 2 and n_cells >= MULTI_NUMPY_THRESHOLD
        engine = "numpy" if pooled else "grouped"
    if engine == "grouped" or n_cells == 0:
        return [
            price_movement_trace_batch(trace, stacks)
            for trace, stacks in prepared
        ]
    return _price_multi_numpy(prepared)


def _price_multi_numpy(
    prepared: List[Tuple[MovementTrace, List[HierarchyStack]]],
) -> List[List[HierarchyEngineResult]]:
    """One vectorized pass over every (group x config) cell.

    Columns are all configs of all groups side by side; each group's
    miss and gate streams are zero-padded to the longest group's
    (``src == 0`` marks a padded miss, ``ec == 0`` a padded gate — both
    are exact no-ops on every accumulator, so padding never perturbs a
    bit).  Groups are mutually independent — no port array or register
    is shared across columns — so executing step ``m`` of every group
    simultaneously preserves each column's exact reservation order, and
    every per-column float op is the same IEEE-754 add/max/argmin the
    per-group engines perform: results are bit-identical to
    :func:`price_movement_trace_batch`.

    The port phase never reads the compute clock (reservations depend
    only on earlier reservations), so the pass factorizes into a
    miss-stream phase that scatters per-gate arrival maxima and a
    gate-stream phase that replays the compute_free/transfer_wait scan
    — each a single loop over the *longest* group's stream instead of
    one loop per group.
    """
    import numpy as np

    n_groups = len(prepared)
    col_group: List[int] = []
    all_stacks: List[HierarchyStack] = []
    for g, (_, stacks) in enumerate(prepared):
        col_group.extend([g] * len(stacks))
        all_stacks.extend(stacks)
    n_cols = len(all_stacks)
    cg = np.asarray(col_group, dtype=np.intp)
    n_nets = max(trace.depth for trace, _ in prepared) - 1

    demote = np.zeros((n_nets, n_cols))
    promote = np.zeros((n_nets, n_cols))
    lanes = [[1] * n_cols for _ in range(n_nets)]
    for c, stack in enumerate(all_stacks):
        for k, net in enumerate(stack.networks()):
            demote[k, c] = net.demote_time_s
            promote[k, c] = net.promote_time_s
            lanes[k][c] = max(1, round(net.effective_concurrency))
    # One (columns, lanes) free-time array per network, inf-padded for
    # narrower configs; columns of shallower stacks simply never touch
    # the networks beyond their depth.
    free_t = []
    for k in range(n_nets):
        width = max(lanes[k])
        arr = np.full((n_cols, width), np.inf)
        for c in range(n_cols):
            arr[c, : lanes[k][c]] = 0.0
        free_t.append(arr)
    top_op = np.array([stack.levels[0].op_time_s for stack in all_stacks])

    max_misses = max(trace.n_misses for trace, _ in prepared)
    max_gates = max(len(trace.gate_ec) for trace, _ in prepared)
    src_g = np.zeros((max_misses, n_groups), dtype=np.int64)
    evcl_g = np.zeros((max_misses, n_groups), dtype=np.int64)
    ec_g = np.zeros((max_gates, n_groups), dtype=np.int64)
    for g, (trace, _) in enumerate(prepared):
        n_miss = trace.n_misses
        src_g[:n_miss, g] = trace.miss_src
        # evict and cascade length fold into one operand: a cascade
        # only exists under an eviction, so clen >= 1 implies evict,
        # and evict-without-cascade is encoded as clen == 0 with the
        # evict bit carried separately below via the sign-free split
        # evcl = evict + clen (evict in {0,1}, so evcl == 0 iff no
        # eviction, and the cascade reached level lvl iff
        # evcl - 1 >= lvl).
        evict = np.asarray(trace.miss_evict, dtype=np.int64)
        evcl_g[:n_miss, g] = evict + np.asarray(trace.miss_clen, dtype=np.int64)
        ec_g[: len(trace.gate_ec), g] = trace.gate_ec
    # Expand the per-group streams to per-column matrices once, so the
    # hot loops index views instead of paying a fancy gather per step.
    src_c = src_g[:, cg]
    evcl_c = evcl_g[:, cg]
    durations = ec_g[:, cg] * top_op

    # Pre-masked per-step operands for the all-active fast path below.
    # ``d_eff[k][m]`` is each column's hop-k demote time, already
    # zeroed where the column's miss does not hop through network k;
    # ``hop_f``/``casc_f`` are the same masks as exact 0.0/1.0 factors.
    # ``*_any[m]`` says whether any group fires the block at step m, so
    # empty blocks are skipped without a per-column scan.
    hop_f = [None] * n_nets
    d_eff = [None] * n_nets
    casc_f = [None] * n_nets
    p_eff = [None] * n_nets
    hop_any = [None] * n_nets
    casc_any = [None] * n_nets
    for k in range(1, n_nets):
        hmask = src_c > k
        hop_f[k] = hmask.astype(np.float64)
        d_eff[k] = demote[k] * hop_f[k]
        cmask = evcl_c > k
        casc_f[k] = cmask.astype(np.float64)
        p_eff[k] = promote[k] * casc_f[k]
        hop_any[k] = (src_g > k).any(axis=1)
        casc_any[k] = (evcl_g > k).any(axis=1)
    p0_eff = promote[0] * (evcl_c > 0)

    # ---- phase 1: the miss streams, all columns in lockstep ---------
    # Each step's arrival vector lands in its own row; the per-gate
    # arrival maxima fold out of the rows afterwards in one
    # ``maximum.reduceat`` per group (max is exact and associative, so
    # the segmented reduction reproduces the sequential fold bit for
    # bit) — cheaper than a fancy-indexed scatter-max on every step.
    arrival_rows = np.empty((max_misses, n_cols))
    zeros_cols = np.zeros(n_cols)
    prev_buf = np.empty(n_cols)
    avail_buf = np.empty(n_cols)
    flatnonzero = np.flatnonzero
    maximum = np.maximum
    rows = np.arange(n_cols)
    d0 = demote[0]
    p0 = promote[0]
    arr0 = free_t[0]
    # Steps below the shortest group's stream have every column active,
    # so they run without index subsetting: masked operands make each
    # op an exact identity on non-participating columns (prev == 0 at a
    # skipped hop, so max(free, 0) + 0.0 writes ``free`` back; a masked
    # avail of 0.0 does the same for a skipped cascade level).
    min_misses = min(trace.n_misses for trace, _ in prepared)
    for m in range(min_misses):
        prev = zeros_cols
        # Hop down: network k serves every column whose miss source
        # lies above it (k <= src - 1), highest network first —
        # exactly each column's scalar hop order.
        for k in range(n_nets - 1, 0, -1):
            if not hop_any[k][m]:
                continue
            arr = free_t[k]
            lane = arr.argmin(axis=1)
            free = arr[rows, lane]
            busy = maximum(free, prev) + d_eff[k][m]
            arr[rows, lane] = busy
            prev = busy * hop_f[k][m]
        lane = arr0.argmin(axis=1)
        free = arr0[rows, lane]
        arrival = maximum(free, prev) + d0
        # The paired write-back holds the arrival port (the reference's
        # left-associated start + demote + promote); a non-evicting
        # miss adds an exact 0.0 instead, which preserves bits.
        busy = arrival + p0_eff[m]
        arr0[rows, lane] = busy
        arrival_rows[m] = arrival
        if n_nets > 1 and casc_any[1][m]:
            avail = busy * casc_f[1][m]
            for lvl in range(1, n_nets):
                if not casc_any[lvl][m]:
                    break
                arr = free_t[lvl]
                lane = arr.argmin(axis=1)
                free = arr[rows, lane]
                nxt = maximum(free, avail) + p_eff[lvl][m]
                arr[rows, lane] = nxt
                if lvl + 1 < n_nets:
                    avail = nxt * casc_f[lvl + 1][m]
    # The padded tail: shorter groups have run dry (src == 0), so ops
    # subset down to the still-active columns.
    for m in range(min_misses, max_misses):
        src = src_c[m]
        prev = prev_buf
        avail = avail_buf
        prev[:] = 0.0
        # A zero row contributes nothing to any gate's arrival maximum
        # (the accumulators never go negative), so inactive columns are
        # exact no-ops in the segmented reduction below.
        arrival_rows[m] = 0.0
        for k in range(n_nets - 1, 0, -1):
            idx = flatnonzero(src > k)
            if idx.size == 0:
                continue
            arr = free_t[k]
            lane = arr.argmin(axis=1)[idx]
            start = maximum(arr[idx, lane], prev[idx])
            busy = start + demote[k, idx]
            arr[idx, lane] = busy
            prev[idx] = busy
        idx = flatnonzero(src)
        if idx.size == 0:
            continue
        evcl = evcl_c[m]
        lane = arr0.argmin(axis=1)[idx]
        start = maximum(arr0[idx, lane], prev[idx])
        arrival = start + d0[idx]
        busy = arrival + p0[idx] * (evcl[idx] > 0)
        arr0[idx, lane] = busy
        avail[idx] = busy
        arrival_rows[m][idx] = arrival
        for lvl in range(1, n_nets):
            idx = flatnonzero(evcl > lvl)
            if idx.size == 0:
                break
            arr = free_t[lvl]
            lane = arr.argmin(axis=1)[idx]
            start2 = maximum(arr[idx, lane], avail[idx])
            nxt = start2 + promote[lvl, idx]
            arr[idx, lane] = nxt
            avail[idx] = nxt

    # Fold each gate's arrival maximum out of its miss rows.  A gate's
    # misses occupy consecutive rows (``gate_nmiss`` counts them), so
    # one segmented max per group reproduces the sequential per-miss
    # fold exactly.  Trailing miss-free gates are left at zero rather
    # than passed to ``reduceat`` (whose degenerate segments would read
    # out of bounds); interior miss-free gates yield degenerate
    # segments that are overwritten with the 0.0 the reference uses.
    arrivals = np.zeros((max_gates, n_cols))
    offset = 0
    for trace, stacks in prepared:
        sl = slice(offset, offset + len(stacks))
        offset += len(stacks)
        if trace.n_misses == 0:
            continue
        nmiss = np.asarray(trace.gate_nmiss, dtype=np.int64)
        last = int(np.nonzero(nmiss)[0][-1])
        starts = np.zeros(last + 1, dtype=np.int64)
        np.cumsum(nmiss[:last], out=starts[1:])
        seg = np.maximum.reduceat(
            arrival_rows[: trace.n_misses, sl], starts, axis=0
        )
        seg[nmiss[: last + 1] == 0] = 0.0
        arrivals[: last + 1, sl] = seg

    # ---- phase 2: the gate streams, all columns in lockstep ---------
    where = np.where
    compute_free = np.zeros(n_cols)
    transfer_wait = np.zeros(n_cols)
    compute_time = np.zeros(n_cols)
    for i in range(max_gates):
        gate_arrivals = arrivals[i]
        start = maximum(compute_free, gate_arrivals)
        delta = gate_arrivals - compute_free
        # Adding 0.0 where there was no wait preserves bits (the
        # accumulators never go negative, so x + 0.0 == x exactly).
        transfer_wait += where(delta > 0.0, delta, 0.0)
        duration = durations[i]
        compute_free = start + duration
        compute_time = compute_time + duration

    results: List[List[HierarchyEngineResult]] = []
    c = 0
    for trace, stacks in prepared:
        group_rows = []
        for stack in stacks:
            group_rows.append(
                _result_from_trace(
                    trace,
                    stack,
                    float(compute_free[c]),
                    float(compute_time[c]),
                    float(transfer_wait[c]),
                )
            )
            c += 1
        results.append(group_rows)
    return results
