"""Resource-constrained list scheduler (Figures 2, 6a; Tables 4, 5).

Compute blocks are the schedulable resource: a logical gate occupies one
block for its duration (fifteen gate-EC slots for a Toffoli, one for
everything else).  Scheduling is event-driven list scheduling with
critical-path priority — gates with the longest remaining dependent
chain issue first — which is also how the paper's scheduler extracts the
"available parallelism" of an application.

Workload generators emit *round-structured* code (``stages``): a gate of
round ``s+1`` cannot start before every gate of round ``s`` has
finished.  For the Draper adder this reproduces the published Toffoli
depth of ``4 lg n + O(1)``; without the barriers the idealized DAG would
be about twice as shallow.

With ``n_blocks=None`` resources are unlimited and the makespan equals
the (round-respecting) critical path: the QLA's maximal-parallelism
execution.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from functools import lru_cache
from typing import List, Optional, Sequence

from ..circuits.circuit import Circuit
from ..circuits.dag import CircuitDag
from ..circuits.draper import DraperAdder, carry_lookahead_adder


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of scheduling one circuit onto compute blocks."""

    makespan: int
    busy: int
    n_gates: int
    n_blocks: Optional[int]
    profile: Optional[List[int]] = None

    @property
    def utilization(self) -> float:
        """Busy block-slots over offered block-slots (1.0 = saturated)."""
        if self.n_blocks is None:
            raise ValueError("utilization needs a finite block count")
        if self.makespan == 0:
            return 0.0
        return self.busy / (self.n_blocks * self.makespan)

    @property
    def average_parallelism(self) -> float:
        return self.busy / self.makespan if self.makespan else 0.0


def list_schedule(
    circuit: Circuit,
    n_blocks: Optional[int] = None,
    unit_time: bool = False,
    keep_profile: bool = False,
    stages: Optional[Sequence[int]] = None,
) -> ScheduleResult:
    """Schedule ``circuit`` onto ``n_blocks`` compute blocks.

    ``unit_time=True`` treats every gate as one time step (the gate-level
    parallelism view of Figure 2); otherwise gates take their EC-slot
    durations.  ``stages`` adds round barriers (see module docstring).
    ``keep_profile=True`` additionally returns the number of busy blocks
    at every time step (only sensible for small makespans).
    """
    dag = CircuitDag.build(circuit)
    gates = circuit.gates
    n = len(gates)
    if n == 0:
        return ScheduleResult(0, 0, 0, n_blocks, [] if keep_profile else None)
    if n_blocks is not None and n_blocks < 1:
        raise ValueError("block count must be positive")
    if stages is not None and len(stages) != n:
        raise ValueError("stages must annotate every gate")

    priority = dag.downstream_slack()
    indegree = [len(p) for p in dag.preds]
    durations = [1 if unit_time else g.ec_slots for g in gates]
    stage_of = list(stages) if stages is not None else [0] * n
    n_stages = max(stage_of) + 1
    stage_total = [0] * n_stages
    for s in stage_of:
        stage_total[s] += 1
    stage_finished = [0] * n_stages
    pending_by_stage: List[List[int]] = [[] for _ in range(n_stages)]
    unlocked = 0
    while unlocked < n_stages - 1 and stage_total[unlocked] == 0:
        unlocked += 1

    ready: List = []  # (-priority, index)

    def make_eligible(idx: int) -> None:
        if stage_of[idx] <= unlocked:
            heapq.heappush(ready, (-priority[idx], idx))
        else:
            pending_by_stage[stage_of[idx]].append(idx)

    for i in dag.ready_at_start():
        make_eligible(i)
    running: List = []  # (finish_time, index)
    free = float("inf") if n_blocks is None else n_blocks

    time = 0
    makespan = 0
    busy = 0
    starts = [0] * n if keep_profile else None
    scheduled = 0
    while scheduled < n:
        # Issue as many ready gates as blocks allow at the current time.
        while ready and free > 0:
            _, idx = heapq.heappop(ready)
            finish = time + durations[idx]
            heapq.heappush(running, (finish, idx))
            if starts is not None:
                starts[idx] = time
            busy += durations[idx]
            makespan = max(makespan, finish)
            free -= 1
            scheduled += 1
        if scheduled == n:
            break
        if not running:  # pragma: no cover - defensive (cyclic DAG)
            raise RuntimeError("no gate running and none ready")
        # Advance to the next completion and release its successors.
        time, idx = heapq.heappop(running)
        free += 1
        done_now = [idx]
        while running and running[0][0] == time:
            _, idx2 = heapq.heappop(running)
            free += 1
            done_now.append(idx2)
        for done in done_now:
            stage_finished[stage_of[done]] += 1
            for succ in dag.succs[done]:
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    make_eligible(succ)
        # Unlock subsequent rounds once the current one fully completes.
        while (
            unlocked < n_stages - 1
            and stage_finished[unlocked] == stage_total[unlocked]
        ):
            unlocked += 1
            for idx2 in pending_by_stage[unlocked]:
                if indegree[idx2] == 0:
                    heapq.heappush(ready, (-priority[idx2], idx2))
            pending_by_stage[unlocked] = []

    profile = None
    if keep_profile:
        profile = [0] * makespan
        for idx, start in enumerate(starts):
            for t in range(start, start + durations[idx]):
                profile[t] += 1
    return ScheduleResult(
        makespan=makespan,
        busy=busy,
        n_gates=n,
        n_blocks=n_blocks,
        profile=profile,
    )


# ----------------------------------------------------------------------
# Adder-specific cached entry points
# ----------------------------------------------------------------------
#
# Architecture results schedule the *out-of-place* carry-lookahead adder:
# the modexp generators recycle carry and propagate-tree registers across
# the conditional-addition tree, so the steady-state per-addition cost
# excludes the erasure mirror (see EXPERIMENTS.md for the comparison
# against the full in-place adder).


@lru_cache(maxsize=None)
def cached_adder(n_bits: int, in_place: bool = False) -> DraperAdder:
    """Cached adder instance (construction is O(n log n) gates)."""
    return carry_lookahead_adder(n_bits, in_place=in_place)


def _adder_circuit(n_bits: int, in_place: bool = False) -> Circuit:
    """Circuit of the cached adder (compat helper for the simulators)."""
    return cached_adder(n_bits, in_place).circuit


@lru_cache(maxsize=None)
def adder_schedule(
    n_bits: int,
    n_blocks: Optional[int],
    in_place: bool = False,
) -> ScheduleResult:
    """Cached round-respecting schedule of an adder on ``n_blocks``."""
    adder = cached_adder(n_bits, in_place)
    return list_schedule(
        adder.circuit, n_blocks=n_blocks, stages=adder.stages
    )


def adder_makespan_slots(
    n_bits: int, n_blocks: Optional[int], in_place: bool = False
) -> int:
    return adder_schedule(n_bits, n_blocks, in_place).makespan


def adder_critical_slots(n_bits: int, in_place: bool = False) -> int:
    """Unlimited-resource makespan (the QLA execution)."""
    return adder_schedule(n_bits, None, in_place).makespan


def adder_utilization(n_bits: int, n_blocks: int, in_place: bool = False) -> float:
    """Figure 6a metric: block utilization at a given block count."""
    return adder_schedule(n_bits, n_blocks, in_place).utilization


def adder_balanced_slots(n_bits: int, n_blocks: Optional[int]) -> int:
    """Work-conserving (Brent-bound) makespan on ``n_blocks`` blocks.

    ``max(T_inf, ceil(W / k))``: execution is limited either by the
    round-structured critical path or by total work over the block
    count.  This fluid model is what the specialization study (Table 4)
    reports — block-level pipelining across rounds washes out the
    per-round quantization that a discrete barrier schedule would add;
    the discrete :func:`adder_schedule` gives the conservative variant.
    """
    unlimited = adder_schedule(n_bits, None)
    if n_blocks is None:
        return unlimited.makespan
    if n_blocks < 1:
        raise ValueError("block count must be positive")
    work_bound = -(-unlimited.busy // n_blocks)  # ceil division
    return max(unlimited.makespan, work_bound)


def adder_balanced_utilization(n_bits: int, n_blocks: int) -> float:
    """Utilization under the work-conserving schedule (Figure 6a)."""
    unlimited = adder_schedule(n_bits, None)
    makespan = adder_balanced_slots(n_bits, n_blocks)
    return unlimited.busy / (n_blocks * makespan)


def toffoli_subcircuit(n_bits: int) -> Circuit:
    """The adder's Toffoli gates only (the paper's gate-count unit).

    One- and two-qubit gates are an order of magnitude cheaper than the
    fault-tolerant Toffoli and fold into its fifteen-period budget, so
    the parallelism study counts Toffoli units.
    """
    from ..circuits.gates import GateKind

    circuit = cached_adder(n_bits, False).circuit
    gates = [g for g in circuit.gates if g.kind is GateKind.TOFFOLI]
    return Circuit(n_qubits=circuit.n_qubits, gates=gates,
                   name=f"draper-{n_bits}-toffolis")


def parallelism_profiles(n_bits: int, n_blocks: int) -> dict:
    """Figure 2 series: Toffolis in flight per cycle, unlimited vs capped.

    The unlimited series is the round-structured profile of the adder's
    Toffoli gates; the capped series re-flows the same work through
    ``n_blocks`` blocks (work-conserving).  The paper's observation —
    that 15 blocks run the 64-qubit adder as fast as unlimited hardware
    — falls out because the average parallelism is below the cap.
    """
    circuit = toffoli_subcircuit(n_bits)
    adder = cached_adder(n_bits, False)
    from ..circuits.gates import GateKind

    stages = tuple(
        s for s, g in zip(adder.stages, adder.circuit.gates)
        if g.kind is GateKind.TOFFOLI
    )
    unlimited = list_schedule(
        circuit, None, unit_time=True, keep_profile=True, stages=stages
    )
    capped = list_schedule(
        circuit, n_blocks, unit_time=True, keep_profile=True
    )
    return {
        "unlimited": unlimited.profile,
        "capped": capped.profile,
        "makespan_unlimited": unlimited.makespan,
        "makespan_capped": capped.makespan,
    }
