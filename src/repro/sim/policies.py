"""Pluggable eviction policies for the memory-hierarchy engine.

Replacement at every finite level of a :class:`~repro.sim.levels.HierarchyStack`
is delegated to an :class:`EvictionPolicy` looked up in a registry by
name.  Five policies ship with the engine:

* ``lru`` — least recently used, the policy of the paper's Section 5.2
  cache study (and of the original two-level simulator, to which it is
  bit-identical);
* ``fifo`` — first-in first-out, the no-recency baseline;
* ``score`` — evict the resident qubit *least referenced by upcoming
  instructions*, reusing the statically-known-program insight behind
  the incremental resident-operand scores of :mod:`repro.sim.cache`:
  quantum programs are fully scheduled at compile time, so a bounded
  lookahead over the fetch-ordered operand trace is legitimate
  compile-time information, not an oracle;
* ``belady`` — Belady's optimal offline replacement (evict the qubit
  whose next use is farthest in the future), the upper bound every
  online policy is measured against;
* ``fidelity`` — evict the qubit that can best afford the trip: fewest
  accumulated transfers first (each climb of the hierarchy accrues
  in-flight error under :mod:`repro.sim.residency`), ties broken
  Belady-style toward the farthest next use.

Policies observe the flattened operand *trace* of the scheduled program
at reset time and receive the current trace position with every event,
which is what lets the lookahead policies stay incremental.  The
:class:`PolicyCache` wrapper pairs a policy with a resident set and the
:class:`~repro.sim.cache.CacheStats` counters; with the ``lru`` policy
its event stream is exactly that of :class:`~repro.sim.cache.LruCache`.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import (
    Callable,
    Collection,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Type,
)

from ..circuits.circuit import NEVER_USED, TraceIndex
from .cache import CacheStats

#: Sentinel "never used again" distance for Belady victim selection.
_NEVER = NEVER_USED


class EvictionPolicy:
    """Replacement decisions for one finite hierarchy level.

    The engine calls :meth:`reset` once with the level capacity and the
    flattened operand trace of the scheduled program, then keeps the
    policy's view of the resident set in sync through
    :meth:`on_insert` / :meth:`on_hit` / :meth:`on_remove`.
    :meth:`victim` names the qubit to displace when the level is full;
    ``pos`` is always the index of the operand access currently being
    processed (cascaded demotions triggered by that access share its
    position), and ``pinned`` holds qubits that must not be chosen —
    operands of the gate currently issuing, which cannot be teleported
    away mid-gate.  When every resident is pinned (capacity smaller
    than the gate's operand count) the pin is unsatisfiable and the
    policy falls back to its unpinned choice.
    """

    name = "abstract"

    def reset(self, capacity: int, trace: Sequence[int]) -> None:
        pass

    def on_insert(self, qubit: int, pos: int) -> None:
        raise NotImplementedError

    def on_hit(self, qubit: int, pos: int) -> None:
        pass

    def on_remove(self, qubit: int) -> None:
        raise NotImplementedError

    def victim(self, pos: int, pinned: Collection[int] = ()) -> int:
        raise NotImplementedError


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------

_REGISTRY: Dict[str, Callable[[], EvictionPolicy]] = {}


def register_policy(cls: Type[EvictionPolicy]) -> Type[EvictionPolicy]:
    """Class decorator adding an :class:`EvictionPolicy` to the registry."""
    name = cls.name
    if not name or name == "abstract":
        raise ValueError("policy classes must set a concrete `name`")
    if name in _REGISTRY:
        raise ValueError(f"eviction policy {name!r} is already registered")
    _REGISTRY[name] = cls
    return cls


def validate_policy(name: str) -> None:
    """Raise ValueError unless ``name`` is a registered policy."""
    if name not in _REGISTRY:
        raise ValueError(
            f"unknown eviction policy {name!r}; registered policies: "
            f"{', '.join(available_policies())}"
        )


def make_policy(name: str) -> EvictionPolicy:
    """A fresh policy instance for one hierarchy level."""
    validate_policy(name)
    return _REGISTRY[name]()


def available_policies() -> Tuple[str, ...]:
    """All registered policy names, sorted."""
    return tuple(sorted(_REGISTRY))


# ----------------------------------------------------------------------
# shipped policies
# ----------------------------------------------------------------------

class _RecencyOrdered(EvictionPolicy):
    """Shared recency bookkeeping: an OrderedDict of residents, hits
    refreshed to the back.  Subclasses inherit LRU recency (which the
    lookahead policies use for tie-breaking); FIFO opts out."""

    def reset(self, capacity: int, trace: Sequence[int]) -> None:
        self._order: "OrderedDict[int, None]" = OrderedDict()

    def on_insert(self, qubit: int, pos: int) -> None:
        self._order[qubit] = None

    def on_hit(self, qubit: int, pos: int) -> None:
        self._order.move_to_end(qubit)

    def on_remove(self, qubit: int) -> None:
        del self._order[qubit]

    def victim(self, pos: int, pinned: Collection[int] = ()) -> int:
        for qubit in self._order:
            if qubit not in pinned:
                return qubit
        return next(iter(self._order))  # unsatisfiable pin: fall back


@register_policy
class LruPolicy(_RecencyOrdered):
    """Least recently used — evict the longest-untouched resident."""

    name = "lru"


@register_policy
class FifoPolicy(_RecencyOrdered):
    """First-in first-out — hits do not refresh a resident's age."""

    name = "fifo"

    def on_hit(self, qubit: int, pos: int) -> None:
        pass


@register_policy
class ScorePolicy(_RecencyOrdered):
    """Evict the resident qubit least used in the next ``window`` accesses.

    Scores are occurrence counts over a sliding lookahead window of the
    operand trace, maintained incrementally (two counter updates per
    trace step).  Ties break toward the least recently used resident,
    so with an empty window the policy degenerates to LRU.
    """

    name = "score"

    def __init__(self, window: int = 256) -> None:
        if window < 1:
            raise ValueError("score lookahead window must be positive")
        self.window = window

    def reset(self, capacity: int, trace: Sequence[int]) -> None:
        super().reset(capacity, trace)
        self._trace = trace
        self._pos = -1
        self._counts: Dict[int, int] = {}
        for q in trace[: self.window]:
            self._counts[q] = self._counts.get(q, 0) + 1

    def _sync(self, pos: int) -> None:
        """Slide the window so it covers trace[pos+1 : pos+1+window]."""
        trace, counts, window = self._trace, self._counts, self.window
        while self._pos < pos:
            self._pos += 1
            leaving = trace[self._pos]
            remaining = counts.get(leaving, 0) - 1
            if remaining > 0:
                counts[leaving] = remaining
            else:
                counts.pop(leaving, None)
            entering = self._pos + window
            if entering < len(trace):
                q = trace[entering]
                counts[q] = counts.get(q, 0) + 1

    def victim(self, pos: int, pinned: Collection[int] = ()) -> int:
        self._sync(pos)
        counts = self._counts
        best = None
        best_score = None
        for qubit in self._order:  # LRU-first iteration breaks ties
            if qubit in pinned:
                continue
            score = counts.get(qubit, 0)
            if best_score is None or score < best_score:
                best, best_score = qubit, score
                if score == 0:
                    break
        if best is None:  # unsatisfiable pin: fall back
            return next(iter(self._order))
        return best


@register_policy
class BeladyPolicy(_RecencyOrdered):
    """Belady's optimal offline replacement (farthest next use).

    The full access trace is available — the program schedule is static
    — so this is the exact replacement-optimal upper bound, not an
    approximation.  Residents that are never used again evict first
    (ties toward the least recently used).
    """

    name = "belady"

    def reset(self, capacity: int, trace: Sequence[int]) -> None:
        super().reset(capacity, trace)
        # The same static-schedule lookahead metadata the prefetchers
        # use (one shared implementation of "when is q needed next?").
        self._index = TraceIndex.build(trace)

    def _next_use(self, qubit: int, pos: int) -> float:
        return self._index.next_use(qubit, pos)

    def victim(self, pos: int, pinned: Collection[int] = ()) -> int:
        best = None
        best_dist = -1.0
        for qubit in self._order:  # LRU-first iteration breaks ties
            if qubit in pinned:
                continue
            dist = self._next_use(qubit, pos)
            if dist == _NEVER:
                return qubit
            if dist > best_dist:
                best, best_dist = qubit, dist
        if best is None:  # unsatisfiable pin: fall back
            return next(iter(self._order))
        return best


@register_policy
class FidelityPolicy(_RecencyOrdered):
    """Evict the qubit that can best afford the trip.

    Under noise-aware residency (:mod:`repro.sim.residency`) every
    transfer costs fidelity: an in-flight qubit accrues error at the
    worse endpoint's rate, so the qubit with the fewest accumulated
    trips has the most error budget left for one more.  Victims are
    ranked by (insertion count so far, then *farthest* next use, then
    LRU order) — the last two mirror Belady so the policy spends its
    fidelity-driven choices where the time cost is smallest.  Like
    ``score``/``belady``, the trip counts derive from the static
    schedule the engine replays, not from runtime oracle knowledge.
    """

    name = "fidelity"

    def reset(self, capacity: int, trace: Sequence[int]) -> None:
        super().reset(capacity, trace)
        self._index = TraceIndex.build(trace)
        #: Lifetime insertion counts — the ledger persists across
        #: evictions so a re-fetched qubit is charged its history.
        self._trips: Dict[int, int] = {}
        #: trip count -> number of *current* residents at it, so the
        #: minimal trip class is known without scanning the order.
        self._resident_trips: Dict[int, int] = {}

    def on_insert(self, qubit: int, pos: int) -> None:
        super().on_insert(qubit, pos)
        # Every insertion at this level is one completed (or issued)
        # climb of the hierarchy — the trip ledger the victim ranking
        # charges against.
        count = self._trips.get(qubit, 0) + 1
        self._trips[qubit] = count
        tally = self._resident_trips
        tally[count] = tally.get(count, 0) + 1

    def on_remove(self, qubit: int) -> None:
        super().on_remove(qubit)
        count = self._trips[qubit]
        tally = self._resident_trips
        remaining = tally[count] - 1
        if remaining:
            tally[count] = remaining
        else:
            del tally[count]

    def victim(self, pos: int, pinned: Collection[int] = ()) -> int:
        # The tally pins down the minimal trip class, so the next-use
        # lookups (the expensive part) only run for its members — a
        # pinned resident can hide the class, in which case the scan
        # recomputes the minimum the slow way.
        trips = self._trips
        if pinned:
            fewest = None
            for qubit in self._order:
                if qubit not in pinned:
                    count = trips[qubit]
                    if fewest is None or count < fewest:
                        fewest = count
            if fewest is None:  # unsatisfiable pin: fall back
                return next(iter(self._order))
        else:
            fewest = min(self._resident_trips)
        best = None
        best_dist = -1.0
        for qubit in self._order:  # LRU-first iteration breaks ties
            if qubit in pinned or trips[qubit] != fewest:
                continue
            dist = self._index.next_use(qubit, pos)
            if dist == _NEVER:
                return qubit
            if dist > best_dist:
                best, best_dist = qubit, dist
        return best


# ----------------------------------------------------------------------
# policy-driven resident set
# ----------------------------------------------------------------------

class PolicyCache:
    """A finite hierarchy level: resident qubits, a policy, counters.

    Mirrors :class:`~repro.sim.cache.LruCache` (same
    :class:`~repro.sim.cache.CacheStats` semantics) but delegates victim
    selection, and adds the two extra operations a multi-level exclusive
    hierarchy needs: :meth:`lookup_remove` (a hit at an intermediate
    level pulls the qubit out — qubits are uncopyable) and
    :meth:`insert` (a write-back demoted from the level above, which is
    not an access).
    """

    def __init__(
        self,
        capacity: int,
        policy: EvictionPolicy,
        trace: Sequence[int] = (),
    ) -> None:
        if capacity < 2:
            raise ValueError(
                "cache capacity must be at least 2 (a two-operand gate "
                "needs both operands resident at once)"
            )
        self.capacity = capacity
        self.policy = policy
        policy.reset(capacity, trace)
        self._resident: Dict[int, None] = {}
        self.stats = CacheStats(capacity=capacity)

    def __contains__(self, qubit: int) -> bool:
        return qubit in self._resident

    def __len__(self) -> int:
        return len(self._resident)

    def resident(self) -> List[int]:
        return list(self._resident)

    def access_evicting(
        self, qubit: int, pos: int, pinned: Collection[int] = ()
    ) -> Tuple[bool, Optional[int]]:
        """Operand access: ``(hit, evicted_qubit_or_None)``.

        ``pinned`` qubits are exempt from victim selection — the
        operands of the gate currently issuing cannot be teleported
        away mid-gate.
        """
        self.stats.accesses += 1
        if qubit in self._resident:
            self.stats.hits += 1
            self.policy.on_hit(qubit, pos)
            return True, None
        self.stats.misses += 1
        return False, self._insert(qubit, pos, pinned)

    def lookup_remove(self, qubit: int, pos: int) -> bool:
        """Search for ``qubit``; a hit removes it (pulled up a level)."""
        self.stats.accesses += 1
        if qubit in self._resident:
            self.stats.hits += 1
            del self._resident[qubit]
            self.policy.on_remove(qubit)
            return True
        self.stats.misses += 1
        return False

    def record_miss(self) -> None:
        """A search passed through this level without finding its qubit."""
        self.stats.accesses += 1
        self.stats.misses += 1

    def remove(self, qubit: int) -> None:
        """Pull ``qubit`` out without touching the access counters.

        Prefetch promotions use this: a prefetch is not a demand
        access, so it must not perturb the level's hit statistics.
        """
        del self._resident[qubit]
        self.policy.on_remove(qubit)

    def peek_victim(
        self, pos: int, pinned: Collection[int] = ()
    ) -> Optional[int]:
        """The qubit the policy would evict now, without evicting it.

        ``None`` while the level still has free capacity.  Note the
        unsatisfiable-pin fallback applies: the returned qubit may be
        pinned if every resident is — callers vetoing on the victim
        must check membership themselves.
        """
        if len(self._resident) < self.capacity:
            return None
        return self.policy.victim(pos, pinned)

    def insert(
        self, qubit: int, pos: int, pinned: Collection[int] = ()
    ) -> Optional[int]:
        """Accept a non-access insertion (a write-back demoted from the
        level above, or a prefetched promotion); returns the displaced
        qubit."""
        return self._insert(qubit, pos, pinned)

    def _insert(
        self, qubit: int, pos: int, pinned: Collection[int]
    ) -> Optional[int]:
        evicted: Optional[int] = None
        if len(self._resident) >= self.capacity:
            evicted = self.policy.victim(pos, pinned)
            del self._resident[evicted]
            self.policy.on_remove(evicted)
            self.stats.evictions += 1
        self._resident[qubit] = None
        self.policy.on_insert(qubit, pos)
        return evicted
