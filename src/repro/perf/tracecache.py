"""Persistent, content-addressed cache of serialized movement traces.

Extracting a :class:`repro.sim.replay.MovementTrace` is the expensive
half of every batched engine sweep: the traffic simulation runs once per
(workload, size, depth, policy) group, then pricing re-costs it for
every code/latency configuration.  PR 7 made the trace canonically
serializable (``MovementTrace.to_bytes``); this module makes it a
*durable shared artifact*, so repeated and resumed sweeps — across
processes, shards, and runs — skip the simulation entirely.

Design points, shared with the sibling persistence layers:

* **Content-addressed blobs.**  Keys come from
  :func:`repro.sim.replay.trace_key` — a hash of the traffic-group
  token, the stack geometry, and the serialization format version — so
  a key can never resolve to a trace priced under different traffic,
  and bumping :data:`repro.sim.replay.TRACE_FORMAT_VERSION` orphans
  every stale blob instead of decoding it wrongly.
* **Atomic, fsynced writes.**  Blobs land via
  :func:`repro.perf.store.atomic_write_text` (per-writer temp file,
  fsync, ``os.replace``), so concurrent same-key writers both leave a
  complete blob (deterministic extraction: identical bytes) and a
  reader can never observe a torn file.
* **Corrupt-tolerant reads.**  Every blob carries a self-describing
  header (format version, payload sha256, payload length); a blob that
  is truncated, bit-flipped, version-mismatched, or otherwise
  unparseable reads as *missing* — the caller silently re-extracts and
  overwrites.  A cache hit is therefore always a verified, bit-exact
  trace; corruption costs a recompute, never a wrong answer.
* **Durable counters.**  Hit/miss/extraction/byte counters accumulate
  both in-process and — under an advisory ``flock`` — in a sidecar
  ``stats.json``, so sharded workers and run→resume sequences report a
  cache-wide tally (surfaced by ``repro-sweep status --trace-cache``).

Within ``REPRO_CACHE_DIR`` the trace cache owns the ``traces/``
subdirectory (see :func:`default_trace_cache`); the memoization layer
owns ``memo/`` and result stores conventionally use ``store/`` — three
disjoint namespaces, documented in ``docs/architecture.md``.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Union

from .store import atomic_write_text

try:  # POSIX only; stats updates degrade to lock-free elsewhere.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platform
    fcntl = None  # type: ignore[assignment]

#: Environment variable naming the shared cache root (the same root the
#: memoization layer uses; each subsystem owns a subdirectory).
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Subdirectory of ``REPRO_CACHE_DIR`` owned by the trace cache.
TRACE_SUBDIR = "traces"

#: Blob file suffix (``<trace_key>.trace``).
BLOB_SUFFIX = ".trace"

#: Sidecar file accumulating cache-wide counters across processes.
STATS_NAME = "stats.json"

#: Sidecar lock file guarding stats read-modify-write cycles.
STATS_LOCK_NAME = ".stats.lock"

#: Counter names persisted to ``stats.json``.
_COUNTERS = ("hits", "misses", "extractions", "bytes_read", "bytes_written")


def _header(version: int, payload: bytes) -> bytes:
    digest = hashlib.sha256(payload).hexdigest()
    return (
        f"REPRO-TRACE v{version} sha256={digest} len={len(payload)}\n"
    ).encode("ascii")


class TraceCache:
    """Directory of verified ``MovementTrace`` blobs keyed by trace key."""

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.extractions = 0
        self.bytes_read = 0
        self.bytes_written = 0
        # Counter values already folded into ``stats.json``; the next
        # flush writes only the in-process delta.
        self._flushed = {name: 0 for name in _COUNTERS}

    # -- paths -----------------------------------------------------------
    def blob_path(self, key: str) -> Path:
        return self.directory / f"{key}{BLOB_SUFFIX}"

    @property
    def stats_path(self) -> Path:
        return self.directory / STATS_NAME

    # -- blobs -----------------------------------------------------------
    def get(self, key: str):
        """The verified trace stored under ``key``, or None.

        Any defect — missing file, torn or truncated blob, header or
        checksum mismatch, stale format version, undecodable payload —
        reads as a miss; the caller re-extracts.
        """
        from ..sim.replay import TRACE_FORMAT_VERSION, MovementTrace

        try:
            blob = self.blob_path(key).read_bytes()
        except OSError:
            with self._lock:
                self.misses += 1
            return None
        trace = None
        head, sep, payload = blob.partition(b"\n")
        if sep and head == _header(TRACE_FORMAT_VERSION, payload).rstrip(b"\n"):
            try:
                trace = MovementTrace.from_bytes(payload)
            except ValueError:
                trace = None
        with self._lock:
            if trace is None:
                self.misses += 1
            else:
                self.hits += 1
                self.bytes_read += len(blob)
        return trace

    def put(self, key: str, trace) -> None:
        """Persist ``trace`` under ``key`` (best-effort, atomic)."""
        from ..sim.replay import TRACE_FORMAT_VERSION

        payload = trace.to_bytes()
        blob = _header(TRACE_FORMAT_VERSION, payload) + payload
        try:
            # The blob is pure ASCII (header + canonical JSON), so the
            # shared text writer's temp-file/fsync/rename discipline
            # applies unchanged.
            atomic_write_text(self.blob_path(key), blob.decode("ascii"))
        except OSError:
            # Best-effort tier: a failed persist only costs the next
            # run a re-extraction.
            return
        with self._lock:
            self.bytes_written += len(blob)

    def load_or_extract(self, key: str, extract: Callable[[], Any]):
        """The cached trace for ``key``, extracting and storing on miss.

        The single entry point the sweep engines use: a hit returns the
        verified stored trace; a miss calls ``extract()`` (counted — CI
        asserts a fully warm sweep performs zero extractions) and
        persists the result for every later shard, resume, and run.
        Either way the cache-wide ``stats.json`` tally is updated.
        """
        trace = self.get(key)
        if trace is None:
            trace = extract()
            with self._lock:
                self.extractions += 1
            self.put(key, trace)
        self.flush_stats()
        return trace

    # -- counters --------------------------------------------------------
    def counters(self) -> Dict[str, int]:
        """This process's counters (independent of ``stats.json``)."""
        with self._lock:
            return {name: getattr(self, name) for name in _COUNTERS}

    def flush_stats(self) -> None:
        """Fold unflushed counter deltas into ``stats.json`` (flock'd).

        Safe under concurrent writers: each read-modify-write cycle
        holds an exclusive advisory lock, and each process only ever
        adds its own delta, so the persisted tally is the sum over all
        participants.  Best-effort — an unwritable directory costs the
        tally, never the sweep.
        """
        with self._lock:
            deltas = {
                name: getattr(self, name) - self._flushed[name]
                for name in _COUNTERS
            }
            if not any(deltas.values()):
                return
            for name in _COUNTERS:
                self._flushed[name] = getattr(self, name)
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            with open(self.directory / STATS_LOCK_NAME, "a+") as handle:
                if fcntl is not None:
                    fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
                try:
                    stats = self.read_stats()
                    for name, delta in deltas.items():
                        stats[name] = stats.get(name, 0) + delta
                    atomic_write_text(
                        self.stats_path, json.dumps(stats, sort_keys=True)
                    )
                finally:
                    if fcntl is not None:
                        fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
        except OSError:
            # Roll the failed flush back into the pending delta.
            with self._lock:
                for name, delta in deltas.items():
                    self._flushed[name] -= delta

    def read_stats(self) -> Dict[str, int]:
        """The persisted cache-wide tally (corrupt/missing = empty)."""
        try:
            stats = json.loads(self.stats_path.read_text())
        except (OSError, ValueError):
            return {}
        if not isinstance(stats, dict):
            return {}
        return {
            name: int(value)
            for name, value in stats.items()
            if name in _COUNTERS and isinstance(value, int)
        }

    def summary(self) -> Dict[str, int]:
        """Cache-wide tally plus the blobs actually on disk."""
        self.flush_stats()
        stats = {name: 0 for name in _COUNTERS}
        stats.update(self.read_stats())
        entries = 0
        entry_bytes = 0
        if self.directory.is_dir():
            for path in self.directory.glob(f"*{BLOB_SUFFIX}"):
                try:
                    entry_bytes += path.stat().st_size
                except OSError:
                    continue
                entries += 1
        stats["entries"] = entries
        stats["entry_bytes"] = entry_bytes
        return stats

    # -- maintenance -----------------------------------------------------
    def clear(self) -> None:
        """Drop every blob (stats and other files are left alone)."""
        if not self.directory.is_dir():
            return
        for path in self.directory.glob(f"*{BLOB_SUFFIX}"):
            try:
                path.unlink()
            except OSError:
                pass

    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob(f"*{BLOB_SUFFIX}"))


def default_trace_cache() -> Optional[TraceCache]:
    """A cache under ``$REPRO_CACHE_DIR/traces``, or None if unset.

    Unlike the memoization layer (whose memory tier is always useful),
    a trace cache with no durable home is pointless — the sweep already
    holds its traces in process — so no environment variable means no
    cache.
    """
    root = os.environ.get(CACHE_DIR_ENV)
    if not root:
        return None
    return TraceCache(Path(root) / TRACE_SUBDIR)


def resolve_trace_cache(
    cache: Union[None, bool, str, Path, "TraceCache"],
) -> Optional[TraceCache]:
    """Normalize the ``trace_cache=`` knob the sweeps expose.

    ``None``/``False`` -> disabled; ``True`` -> the
    ``$REPRO_CACHE_DIR/traces`` default (or disabled when the variable
    is unset); a path -> a cache rooted exactly there; a
    :class:`TraceCache` -> itself.
    """
    if cache is None or cache is False:
        return None
    if cache is True:
        return default_trace_cache()
    if isinstance(cache, (str, Path)):
        return TraceCache(cache)
    if isinstance(cache, TraceCache):
        return cache
    raise TypeError(f"cannot interpret trace_cache={cache!r}")
