"""Persistent memoization for deterministic sweep kernels.

A :class:`SweepCache` maps a stable hash of a configuration to its
JSON-serializable result, with two storage tiers:

* an in-process LRU (always on) — repeated sweeps inside one process
  (tables, sensitivity studies, benchmarks) evaluate each cell once;
* an optional on-disk JSON file per entry — results survive across
  processes, so regenerating the paper's tables after the first run
  costs milliseconds.

Keys are built by :func:`stable_key` from the kernel name plus its full
parameter tuple; anything that changes the numeric result must be part
of the key.  A global format version is folded into every hash so a
layout change silently invalidates stale files instead of decoding them
wrongly.

The disk tier is opt-in: pass a directory to :class:`SweepCache`, or
set ``REPRO_CACHE_DIR`` to give :func:`default_cache` one.  Values must
round-trip through ``json`` — callers serialize dataclass rows with
``dataclasses.asdict`` and rebuild on the way out.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Any, Optional, Union

from .store import atomic_write_text

#: Bump to invalidate every previously persisted entry (format changes).
CACHE_FORMAT_VERSION = 1

#: Environment variable naming the default on-disk cache root.  The
#: memo cache owns the ``memo/`` subdirectory; the trace cache owns
#: ``traces/`` and result stores conventionally use ``store/`` (see
#: :mod:`repro.perf.tracecache`), so the three key spaces can never
#: collide.  Explicitly constructed caches still use exactly the
#: directory they are given.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Subdirectory of ``REPRO_CACHE_DIR`` owned by the memo file cache.
MEMO_SUBDIR = "memo"


def _code_version() -> str:
    """The package version, folded into every key.

    A release bump therefore invalidates all persisted entries; edits
    that change numeric results without a version bump still require
    bumping :data:`CACHE_FORMAT_VERSION` (or clearing the directory).
    """
    try:
        from .. import __version__

        return __version__
    except Exception:  # pragma: no cover - partially initialized package
        return "unknown"


def stable_key(kernel: str, /, **params: Any) -> str:
    """Deterministic hex key for one kernel configuration.

    Parameters are JSON-encoded with sorted keys; non-JSON values fall
    back to ``repr``, so callers should stick to primitives, tuples and
    lists to keep keys stable across processes.  The cache format
    version and the package version are folded into every key, so both
    format changes and releases invalidate stale persisted entries.
    """
    payload = json.dumps(
        {
            "v": CACHE_FORMAT_VERSION,
            "code": _code_version(),
            "kernel": kernel,
            "params": params,
        },
        sort_keys=True,
        default=repr,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:40]


class SweepCache:
    """Two-tier (memory LRU + JSON files) result cache."""

    def __init__(
        self,
        directory: Optional[Union[str, Path]] = None,
        max_memory_entries: int = 512,
    ) -> None:
        if max_memory_entries < 1:
            raise ValueError("memory tier needs at least one slot")
        self.directory = Path(directory) if directory is not None else None
        self.max_memory_entries = max_memory_entries
        self._memory: "OrderedDict[str, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    # -- lookup ----------------------------------------------------------
    def get(self, key: str) -> Optional[Any]:
        """Cached value for ``key``, or None.  Checks memory, then disk."""
        with self._lock:
            if key in self._memory:
                self._memory.move_to_end(key)
                self.hits += 1
                return self._memory[key]
        value = self._read_disk(key)
        if value is not None:
            with self._lock:
                self._remember(key, value)
                self.hits += 1
            return value
        with self._lock:
            self.misses += 1
        return None

    def put(self, key: str, value: Any) -> None:
        """Store a JSON-serializable value in both tiers."""
        with self._lock:
            self._remember(key, value)
        self._write_disk(key, value)

    def _remember(self, key: str, value: Any) -> None:
        self._memory[key] = value
        self._memory.move_to_end(key)
        while len(self._memory) > self.max_memory_entries:
            self._memory.popitem(last=False)

    # -- disk tier -------------------------------------------------------
    def _path(self, key: str) -> Optional[Path]:
        if self.directory is None:
            return None
        return self.directory / f"{key}.json"

    def _read_disk(self, key: str) -> Optional[Any]:
        path = self._path(key)
        if path is None:
            return None
        try:
            return json.loads(path.read_text())["value"]
        except (OSError, ValueError, KeyError):
            return None

    def _write_disk(self, key: str, value: Any) -> None:
        path = self._path(key)
        if path is None:
            return
        try:
            encoded = json.dumps({"value": value})
        except TypeError:
            # Un-serializable values degrade the disk tier to a no-op;
            # the memory tier already has the entry.
            return
        try:
            # Per-writer temp file + atomic rename (shared with the
            # sharded-sweep ResultStore): concurrent put()s of the same
            # key can never leave a torn file for a warm read to trip on.
            atomic_write_text(path, encoded)
        except OSError:
            # Best-effort tier: a failed persist only costs a recompute.
            pass

    # -- maintenance -----------------------------------------------------
    def clear_memory(self) -> None:
        with self._lock:
            self._memory.clear()
            self.hits = 0
            self.misses = 0

    def clear(self) -> None:
        """Drop both tiers (disk files only under our directory)."""
        self.clear_memory()
        if self.directory is not None and self.directory.is_dir():
            for entry in self.directory.glob("*.json"):
                try:
                    entry.unlink()
                except OSError:
                    pass

    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)


_default: Optional[SweepCache] = None
_default_lock = threading.Lock()


def default_cache() -> SweepCache:
    """Process-wide cache; disk tier enabled iff ``REPRO_CACHE_DIR`` set.

    The disk tier lives under ``$REPRO_CACHE_DIR/memo`` — the memo
    layer's namespace within the shared cache root — never the root
    itself, so memo entries, trace blobs (``traces/``) and result
    stores (``store/``) cannot collide.
    """
    global _default
    with _default_lock:
        if _default is None:
            root = os.environ.get(CACHE_DIR_ENV)
            directory = Path(root) / MEMO_SUBDIR if root else None
            _default = SweepCache(directory=directory)
        return _default


def resolve_cache(
    cache: Union[None, bool, str, Path, SweepCache]
) -> Optional[SweepCache]:
    """Normalize the ``cache=`` knob the sweeps expose.

    ``None`` -> the process-wide default; ``False`` -> caching disabled;
    a path -> a disk-backed cache rooted there; a :class:`SweepCache` ->
    itself.
    """
    if cache is None:
        return default_cache()
    if cache is False:
        return None
    if cache is True:
        return default_cache()
    if isinstance(cache, (str, Path)):
        return SweepCache(directory=cache)
    if isinstance(cache, SweepCache):
        return cache
    raise TypeError(f"cannot interpret cache={cache!r}")
