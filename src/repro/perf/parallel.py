"""Opt-in process-pool fan-out for embarrassingly parallel sweep cells.

Every design-space cell is pure and independent, so the sweeps can hand
their cell list to :func:`parallel_map` with ``workers=N`` and fan out
across processes.  The default (``workers=None``/``0``/``1``) stays
serial — no pool start-up cost, identical results, and the in-process
memoization tier keeps working.  Cell functions must be module-level
(picklable) and their results deterministic, so serial and parallel
runs are interchangeable.

:func:`parallel_iter` streams results lazily in input order;
:func:`parallel_indexed` streams ``(index, result)`` pairs in
*completion* order, so a caller can persist each one the moment it
exists (the sharded sweep runner does, for crash-durability).
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, List, Optional, Tuple, TypeVar

T = TypeVar("T")
R = TypeVar("R")


def parallel_iter(
    fn: Callable[[T], R],
    items: Iterable[T],
    workers: Optional[int] = None,
    chunksize: int = 1,
) -> Iterator[R]:
    """Lazily yield ``fn(x)`` for each item, in input order.

    Same modes as :func:`parallel_map`: ``workers`` of None, 0 or 1
    maps serially in-process (each result computed only when the caller
    advances); larger values stream results out of a
    ``ProcessPoolExecutor`` as they complete, still in input order.
    """
    cells = list(items)
    if workers is not None and workers < 0:
        raise ValueError("workers cannot be negative")
    if not workers or workers <= 1 or len(cells) <= 1:
        return map(fn, cells)
    return _pool_iter(fn, cells, workers, chunksize)


def _pool_iter(
    fn: Callable[[T], R], cells: List[T], workers: int, chunksize: int
) -> Iterator[R]:
    from concurrent.futures import ProcessPoolExecutor

    with ProcessPoolExecutor(max_workers=min(workers, len(cells))) as pool:
        yield from pool.map(fn, cells, chunksize=max(1, chunksize))


def parallel_indexed(
    fn: Callable[[T], R],
    items: Iterable[T],
    workers: Optional[int] = None,
) -> Iterator[Tuple[int, R]]:
    """Yield ``(index, fn(item))`` pairs in *completion* order.

    Serial mode (``workers`` of None/0/1) yields lazily in input order.
    Pool mode yields each result as its future completes, so a consumer
    persisting results incrementally is never blocked behind a slow
    head-of-line item — finished work is durable even if later (or
    earlier!) items are still running when the process dies.
    """
    cells = list(items)
    if workers is not None and workers < 0:
        raise ValueError("workers cannot be negative")
    if not workers or workers <= 1 or len(cells) <= 1:
        return ((index, fn(cell)) for index, cell in enumerate(cells))
    return _pool_indexed(fn, cells, workers)


def _pool_indexed(
    fn: Callable[[T], R], cells: List[T], workers: int
) -> Iterator[Tuple[int, R]]:
    from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait

    with ProcessPoolExecutor(max_workers=min(workers, len(cells))) as pool:
        futures = {pool.submit(fn, cell): index for index, cell in enumerate(cells)}
        pending = set(futures)
        try:
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                # Yield every finished result before surfacing a
                # failure: a consumer persisting incrementally keeps
                # all completed work, not just what happened to drain
                # ahead of the first raising future.
                failed = [f for f in done if f.exception() is not None]
                for future in sorted(
                    (f for f in done if f.exception() is None),
                    key=futures.__getitem__,
                ):
                    yield futures[future], future.result()
                if failed:
                    raise min(failed, key=futures.__getitem__).exception()
        finally:
            # On failure or an abandoned iteration, queued cells must
            # not start (the pool exit still waits out running ones).
            for future in pending:
                future.cancel()


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    workers: Optional[int] = None,
    chunksize: int = 1,
) -> List[R]:
    """``[fn(x) for x in items]``, optionally across a process pool.

    Results keep the input order in both modes.  ``workers`` of None, 0
    or 1 runs serially in-process; larger values use a
    ``ProcessPoolExecutor`` capped at the number of items.
    """
    return list(parallel_iter(fn, items, workers=workers, chunksize=chunksize))
