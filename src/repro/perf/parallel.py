"""Opt-in process-pool fan-out for embarrassingly parallel sweep cells.

Every design-space cell is pure and independent, so the sweeps can hand
their cell list to :func:`parallel_map` with ``workers=N`` and fan out
across processes.  The default (``workers=None``/``0``/``1``) stays
serial — no pool start-up cost, identical results, and the in-process
memoization tier keeps working.  Cell functions must be module-level
(picklable) and their results deterministic, so serial and parallel
runs are interchangeable.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, TypeVar

T = TypeVar("T")
R = TypeVar("R")


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    workers: Optional[int] = None,
    chunksize: int = 1,
) -> List[R]:
    """``[fn(x) for x in items]``, optionally across a process pool.

    Results keep the input order in both modes.  ``workers`` of None, 0
    or 1 runs serially in-process; larger values use a
    ``ProcessPoolExecutor`` capped at the number of items.
    """
    cells = list(items)
    if workers is not None and workers < 0:
        raise ValueError("workers cannot be negative")
    if not workers or workers <= 1 or len(cells) <= 1:
        return [fn(cell) for cell in cells]
    from concurrent.futures import ProcessPoolExecutor

    with ProcessPoolExecutor(max_workers=min(workers, len(cells))) as pool:
        return list(pool.map(fn, cells, chunksize=max(1, chunksize)))
