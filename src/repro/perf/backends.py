"""Pluggable result-store backends behind one locator scheme.

**Ownership.**  This module owns everything that makes a result store
*interchangeable*: the URL-style locator syntax that selects a backend
(``fs:DIR`` for the filesystem :class:`repro.perf.store.ResultStore`,
``sqlite:PATH`` for the :class:`SqliteStore` defined here), the
backend-mismatch diagnostics (:class:`StoreBackendError`), and the
second backend itself.  The filesystem backend stays in
:mod:`repro.perf.store`; every *consumer* — the sweep runner, the CLI,
the table builders, :mod:`repro.service` — reaches stores only through
:func:`open_store` / :func:`repro.perf.store.resolve_store` and the
shared method surface, never through backend-specific paths.

**Public surface.**  :func:`parse_locator`, :func:`open_store`,
:func:`locator_path`, :class:`SqliteStore`, :class:`StoreBackendError`,
:data:`STORE_SCHEMES`.

**The backend protocol.**  A store backend is any object offering the
:class:`~repro.perf.store.ResultStore` method surface with the same
semantics (``docs/sweep-service.md`` states the exact contract a third
backend must satisfy):

* ``put(key, value, *, kernel=None, params=None, index=True) -> meta``
  — atomic: a concurrent reader observes the old record or the new,
  never a torn one; two writers racing one key both leave a complete
  record (cells are deterministic, so last-writer-wins is
  value-identical).
* ``record(key)`` / ``get(key)`` / ``has(key)`` — corruption-tolerant:
  an unreadable, truncated, or wrong-shape record reads as *missing*
  (``None``/``False``), never as an error or a wrong value.
* ``keys()`` — sorted keys of every *readable* record.
* ``status(keys) -> StoreStatus`` — done/missing/failed split, where
  ``failed`` is the subset of missing keys holding a failure record.
* ``put_failure`` / ``failure`` / ``failure_keys`` / ``clear_failure``
  — durable quarantine records in a separate namespace that never
  shadows results: a success always trumps a stale failure.
* ``read_index`` / ``index_add`` / ``rebuild_index`` — the advisory
  key -> meta manifest; updates are atomic read-modify-write batches
  and ``rebuild_index`` regenerates the manifest from the records,
  which remain the only source of truth.
* ``chaos_tear(plan, key, params)`` — the fault-injection hook
  modelling a torn write that survived persistence (the ``"corrupt"``
  fault of :mod:`repro.perf.chaos`); the torn record must then read as
  missing.
* ``path`` — the backend's anchor on the local filesystem (directory
  for ``fs``, database file for ``sqlite``), used only for *sibling*
  artifacts such as profile dumps, never for record access.

:class:`SqliteStore` keeps records as the **same JSON text** the
filesystem backend writes (``json.dumps(record, sort_keys=True)``),
one row per key, so a grid swept into either backend merges and
renders byte-identically — ``tests/test_backends.py`` parametrizes the
PR 4/6 atomicity, corruption, concurrency and quarantine contracts
over both backends and pins that bit-identity.
"""

from __future__ import annotations

import json
import os
import re
import sqlite3
import tempfile
from contextlib import closing
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from .store import STORE_VERSION, ResultStore, StoreStatus

#: Locator schemes with a registered backend.
STORE_SCHEMES = ("fs", "sqlite")

#: First bytes of every SQLite database file — the mismatch probe.
_SQLITE_MAGIC = b"SQLite format 3\x00"

#: Something that *looks* like a locator scheme (``word:`` prefix); a
#: bare path never matches because path separators are excluded.
_SCHEME_RE = re.compile(r"^[A-Za-z][A-Za-z0-9+.\-]*$")


class StoreBackendError(ValueError):
    """A locator named an unknown backend or the wrong one for its data."""


def parse_locator(locator: Union[str, Path]) -> Tuple[str, str]:
    """Split a store locator into ``(scheme, path)``.

    ``fs:DIR`` and ``sqlite:PATH`` select their backends explicitly; a
    bare path (or :class:`~pathlib.Path`) means ``fs`` for backward
    compatibility with every pre-backend ``--store DIR`` invocation.
    A ``word:`` prefix that is not a registered scheme raises
    :class:`StoreBackendError` rather than being misread as a relative
    path.
    """
    if isinstance(locator, Path):
        return "fs", str(locator)
    text = str(locator)
    scheme, sep, rest = text.partition(":")
    if sep and _SCHEME_RE.match(scheme):
        if scheme not in STORE_SCHEMES:
            raise StoreBackendError(
                f"unknown store backend {scheme!r} in {text!r} "
                f"(registered: {', '.join(STORE_SCHEMES)})"
            )
        if not rest:
            raise StoreBackendError(f"store locator {text!r} has an empty path")
        return scheme, rest
    return "fs", text


def locator_path(locator: Union[str, Path]) -> Path:
    """The filesystem path a locator anchors to (for sibling artifacts)."""
    return Path(parse_locator(locator)[1])


def open_store(locator: Union[str, Path]):
    """Open the backend a locator names, diagnosing mismatches early.

    ``fs:DIR`` (or a bare path) pointed at a SQLite database file, and
    ``sqlite:PATH`` pointed at a store directory, each raise
    :class:`StoreBackendError` naming the locator that would work —
    the failure mode is a wrong *flag*, so the fix belongs in the
    message, not in a traceback from deep inside a read.
    """
    scheme, path_text = parse_locator(locator)
    path = Path(path_text)
    if scheme == "sqlite":
        return SqliteStore(path)
    if path.is_file():
        hint = (
            f" — it is a SQLite database; use sqlite:{path}"
            if _reads_as_sqlite(path)
            else ""
        )
        raise StoreBackendError(
            f"fs store path {path} is a file, not a directory{hint}",
        )
    return ResultStore(path)


def _reads_as_sqlite(path: Path) -> bool:
    """True iff ``path`` starts with the SQLite file magic."""
    try:
        with open(path, "rb") as handle:
            return handle.read(len(_SQLITE_MAGIC)) == _SQLITE_MAGIC
    except OSError:
        return False


_SCHEMA = (
    """CREATE TABLE IF NOT EXISTS records (
        key TEXT PRIMARY KEY,
        record TEXT NOT NULL
    )""",
    """CREATE TABLE IF NOT EXISTS failures (
        key TEXT PRIMARY KEY,
        record TEXT NOT NULL
    )""",
    """CREATE TABLE IF NOT EXISTS index_meta (
        key TEXT PRIMARY KEY,
        meta TEXT NOT NULL
    )""",
)


class SqliteStore:
    """Content-addressed result store in a single SQLite database.

    One row per cell in ``records``, holding the *exact* JSON text the
    filesystem backend would write to ``<key>.json`` — so records are
    bit-identical across backends, and the same corruption-tolerance
    rule applies: a row whose text is not the expected JSON shape reads
    as missing, never as an error.  Failure (quarantine) records live
    in their own ``failures`` table, parallel to results and never
    shadowing them; the advisory index is the ``index_meta`` table.

    Concurrency comes from SQLite itself: WAL journaling plus a busy
    timeout lets any number of worker processes upsert cells while
    readers (the service, ``status``, ``merge``) stay unblocked, the
    same many-writers/many-readers regime the filesystem backend
    handles with atomic renames and ``flock``.
    """

    #: How long a writer waits on a locked database before erroring.
    BUSY_TIMEOUT_S = 30.0

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        if self.path.is_dir():
            raise StoreBackendError(
                f"sqlite store path {self.path} is a directory "
                f"(an fs store?) — use fs:{self.path}"
            )
        if (
            self.path.is_file()
            and self.path.stat().st_size
            and not _reads_as_sqlite(self.path)
        ):
            raise StoreBackendError(
                f"sqlite store path {self.path} is not a SQLite database"
            )

    # -- connections -----------------------------------------------------
    def _connect(self) -> sqlite3.Connection:
        """A fresh connection with the schema ensured.

        Short-lived connections per operation keep the store safe to
        use from any thread or process without shared handles — the
        sweep workload is records-per-cell, not a hot OLTP loop.
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        conn = sqlite3.connect(str(self.path), timeout=self.BUSY_TIMEOUT_S)
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
        for statement in _SCHEMA:
            conn.execute(statement)
        return conn

    def _read(self, query: str, args: Tuple = ()) -> List[Tuple]:
        """Rows of a read-only query; a missing or torn database reads
        as empty, mirroring the filesystem backend's missing-directory
        and corrupt-file tolerance."""
        if not self.path.is_file():
            return []
        try:
            with closing(self._connect()) as conn:
                return list(conn.execute(query, args))
        except sqlite3.Error:
            return []

    # -- records ---------------------------------------------------------
    def put(
        self,
        key: str,
        value: Any,
        *,
        kernel: Optional[str] = None,
        params: Optional[Dict[str, Any]] = None,
        index: bool = True,
    ) -> Dict[str, Any]:
        """Persist one cell result atomically; returns the record meta.

        The record text is exactly what :class:`ResultStore.put` writes
        (sorted-key JSON), upserted in one transaction — a reader sees
        the old row or the new, never a torn one.  ``index=False``
        skips the advisory-index upsert for bulk writers.
        """
        meta: Dict[str, Any] = {"store_version": STORE_VERSION}
        if kernel is not None:
            meta["kernel"] = kernel
        if params is not None:
            meta["params"] = params
        record = {"value": value, "meta": meta}
        text = json.dumps(record, sort_keys=True)
        with closing(self._connect()) as conn, conn:
            conn.execute(
                "INSERT INTO records(key, record) VALUES(?, ?) "
                "ON CONFLICT(key) DO UPDATE SET record=excluded.record",
                (key, text),
            )
            if index:
                conn.execute(
                    "INSERT INTO index_meta(key, meta) VALUES(?, ?) "
                    "ON CONFLICT(key) DO UPDATE SET meta=excluded.meta",
                    (key, json.dumps(meta, sort_keys=True)),
                )
        return meta

    @staticmethod
    def _parse_record(text: str) -> Optional[Dict[str, Any]]:
        try:
            record = json.loads(text)
        except ValueError:
            return None
        if not isinstance(record, dict) or "value" not in record:
            return None
        return record

    def record(self, key: str) -> Optional[Dict[str, Any]]:
        """The full record dict for ``key``, or None if missing/corrupt."""
        rows = self._read("SELECT record FROM records WHERE key=?", (key,))
        return self._parse_record(rows[0][0]) if rows else None

    def get(self, key: str) -> Optional[Any]:
        """The stored value for ``key``, or None if missing/corrupt."""
        record = self.record(key)
        return None if record is None else record["value"]

    def has(self, key: str) -> bool:
        """True iff ``key`` has a *readable* record (corrupt = missing)."""
        return self.record(key) is not None

    def keys(self) -> List[str]:
        """Keys of every readable record, sorted."""
        return [
            key
            for key, text in self._read(
                "SELECT key, record FROM records ORDER BY key",
            )
            if self._parse_record(text) is not None
        ]

    def status(self, keys: Iterable[str]) -> StoreStatus:
        """Done/missing/failed split of ``keys`` against the records."""
        wanted = list(keys)
        have = set(self.keys())
        missing = tuple(key for key in wanted if key not in have)
        quarantined = set(self.failure_keys()) if missing else set()
        failed = tuple(key for key in missing if key in quarantined)
        return StoreStatus(
            total=len(wanted),
            done=len(wanted) - len(missing),
            missing_keys=missing,
            failed_keys=failed,
        )

    # -- failure records -------------------------------------------------
    def put_failure(
        self,
        key: str,
        failure: Dict[str, Any],
        *,
        kernel: Optional[str] = None,
        params: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """Persist one cell's terminal failure atomically (quarantine).

        Failure rows live in their own table — parallel to results,
        never shadowing them — exactly like the filesystem backend's
        ``failures/`` subdirectory.
        """
        meta: Dict[str, Any] = {"store_version": STORE_VERSION}
        if kernel is not None:
            meta["kernel"] = kernel
        if params is not None:
            meta["params"] = params
        record = {"failure": dict(failure), "meta": meta}
        with closing(self._connect()) as conn, conn:
            conn.execute(
                "INSERT INTO failures(key, record) VALUES(?, ?) "
                "ON CONFLICT(key) DO UPDATE SET record=excluded.record",
                (key, json.dumps(record, sort_keys=True)),
            )
        return record

    @staticmethod
    def _parse_failure(text: str) -> Optional[Dict[str, Any]]:
        try:
            record = json.loads(text)
        except ValueError:
            return None
        failure_ok = isinstance(record, dict) and isinstance(
            record.get("failure"), dict,
        )
        if not failure_ok:
            return None
        return record

    def failure(self, key: str) -> Optional[Dict[str, Any]]:
        """The failure record for ``key``, or None (corrupt = none)."""
        rows = self._read("SELECT record FROM failures WHERE key=?", (key,))
        return self._parse_failure(rows[0][0]) if rows else None

    def failure_keys(self) -> List[str]:
        """Keys of every readable failure record, sorted."""
        return [
            key
            for key, text in self._read(
                "SELECT key, record FROM failures ORDER BY key",
            )
            if self._parse_failure(text) is not None
        ]

    def clear_failure(self, key: str) -> None:
        """Drop ``key``'s failure record (a later attempt succeeded)."""
        if not self.path.is_file():
            return
        with closing(self._connect()) as conn, conn:
            conn.execute("DELETE FROM failures WHERE key=?", (key,))

    # -- index -----------------------------------------------------------
    def read_index(self) -> Dict[str, Any]:
        """The advisory index mapping key -> record meta (may be stale)."""
        index: Dict[str, Any] = {}
        for key, text in self._read("SELECT key, meta FROM index_meta"):
            try:
                meta = json.loads(text)
            except ValueError:
                continue
            index[key] = meta
        return index

    def index_add(self, entries: Dict[str, Any]) -> None:
        """Merge ``entries`` (key -> meta) into the index, transactionally."""
        with closing(self._connect()) as conn, conn:
            conn.executemany(
                "INSERT INTO index_meta(key, meta) VALUES(?, ?) "
                "ON CONFLICT(key) DO UPDATE SET meta=excluded.meta",
                [
                    (key, json.dumps(meta, sort_keys=True))
                    for key, meta in entries.items()
                ],
            )

    def rebuild_index(self) -> Dict[str, Any]:
        """Regenerate the index from the records actually stored."""
        records: Dict[str, Any] = {}
        for key, text in self._read(
            "SELECT key, record FROM records ORDER BY key",
        ):
            record = self._parse_record(text)
            if record is None:
                continue
            meta = record.get("meta")
            records[key] = meta if isinstance(meta, dict) else {}
        with closing(self._connect()) as conn, conn:
            conn.execute("DELETE FROM index_meta")
            conn.executemany(
                "INSERT INTO index_meta(key, meta) VALUES(?, ?)",
                [
                    (key, json.dumps(meta, sort_keys=True))
                    for key, meta in records.items()
                ],
            )
        return records

    # -- fault injection -------------------------------------------------
    def chaos_tear(self, plan, key: str, params: Dict[str, Any]) -> bool:
        """Apply a scripted ``"corrupt"`` fault to ``key``; True if torn.

        The plan's tear logic (and its cross-process ``times``
        accounting) operates on files, so the record text round-trips
        through a temp file: whatever the plan leaves there — the
        truncated JSON modelling a tear that survived persistence — is
        stored back, after which the record reads as missing exactly
        like a torn filesystem record.
        """
        rows = self._read("SELECT record FROM records WHERE key=?", (key,))
        if not rows:
            return False
        fd, tmp = tempfile.mkstemp(prefix=".chaos-", suffix=".json")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(rows[0][0])
            if not plan.corrupt_after_write(tmp, params):
                return False
            torn_text = Path(tmp).read_text()
        finally:
            try:
                os.unlink(tmp)
            except OSError:
                pass
        with closing(self._connect()) as conn, conn:
            conn.execute(
                "UPDATE records SET record=? WHERE key=?", (torn_text, key),
            )
        return True
