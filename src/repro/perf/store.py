"""Durable, shareable result store for sharded sweeps.

A :class:`ResultStore` is a directory of content-addressed JSON records,
one file per sweep cell, keyed by the same configuration hash
:func:`repro.perf.memo.stable_key` produces.  It is the persistence
layer of the sharded sweep subsystem (:mod:`repro.sweep`): any number of
worker processes — on one host or many sharing a filesystem — write
cells into the same directory, and a ``merge`` reassembles the exact row
list a single-process sweep would have produced.

Design points:

* **Atomic writes.**  Every record (and the index) lands via
  :func:`atomic_write_text` — a per-writer temp file plus ``os.replace``
  — so a reader can never observe a torn file, and two workers racing
  the same cell both leave a complete record (last writer wins; cells
  are deterministic, so both wrote the same bytes).
* **Corruption-tolerant reads.**  A record that is unreadable,
  truncated, or not the expected JSON shape is treated as *missing*,
  never as an error: ``resume`` recomputes it.
* **Advisory, ``flock``-guarded index.**  ``index.json`` is a manifest
  of per-cell metadata for humans and tooling.  Updates take an
  exclusive :mod:`fcntl` lock on a sidecar lock file, and bulk writers
  batch them (:func:`repro.sweep.runner.compute_grid` indexes once per
  grid run, not once per cell).  The records are always the truth:
  readers never consult the index for correctness, and
  :meth:`ResultStore.rebuild_index` regenerates it from a directory
  scan (which is also how merged multi-shard artifact directories heal
  their conflicting indexes).
* **Durable failure records.**  A supervised run that exhausts a
  cell's retries writes a *failure* record under ``failures/<key>.json``
  (exception type, attempts, traceback digest) instead of a result.
  Failures never shadow results — ``status`` reports them as
  failed-and-missing, ``resume`` recomputes them, and a success clears
  them — so quarantine is visible without ever poisoning a merge.
* **One backend of several.**  This filesystem layout is the ``fs``
  backend of the pluggable-store protocol; :mod:`repro.perf.backends`
  defines the locator syntax (``fs:DIR`` / ``sqlite:PATH``), the
  method/atomicity contract, and the :class:`SqliteStore` twin proven
  interchangeable by ``tests/test_backends.py``.
* **``SweepCache``-compatible layout.**  Records are ``<key>.json``
  files whose top-level ``"value"`` field holds the payload — exactly
  the layout :class:`repro.perf.memo.SweepCache` persists — so a
  :class:`SweepCache` pointed at a store directory warm-reads its
  records, and vice versa.  Within a shared ``REPRO_CACHE_DIR`` root,
  stores conventionally live under the ``store/`` subdirectory (the
  memo cache owns ``memo/``, the trace cache ``traces/``), so the
  three key spaces stay disjoint by construction.
"""

from __future__ import annotations

import json
import os
import tempfile
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Union

try:  # POSIX only; the store degrades to lock-free index updates elsewhere.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platform
    fcntl = None  # type: ignore[assignment]

#: Bump when the record layout changes; folded into every record's meta.
STORE_VERSION = 1

#: Index file name (advisory; rebuilt from a scan whenever stale).
INDEX_NAME = "index.json"

#: Sidecar lock file guarding index read-modify-write cycles.
LOCK_NAME = ".index.lock"

#: Subdirectory holding per-cell *failure* records (quarantined cells).
#: Kept out of the record scan's glob so a failure can never be
#: mistaken for a result.
FAILURE_DIR = "failures"


def atomic_write_text(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` atomically (temp file + ``os.replace``).

    A per-writer ``mkstemp`` name keeps concurrent writers of the same
    path from clobbering each other's half-written bytes; the final
    rename is atomic, so readers see either the old content or the new,
    never a torn file.  Raises ``OSError`` on failure (after removing
    the temp file) — callers that treat persistence as best-effort
    catch it.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.stem[:16]}-", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
            handle.flush()
            # fsync before the rename: a power-loss-style kill after
            # os.replace must never surface a renamed-but-truncated
            # record (rename without data durability can).
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except OSError:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


@dataclass(frozen=True)
class StoreStatus:
    """Completion summary of one key set against a store.

    ``failed_keys`` is the subset of ``missing_keys`` with a durable
    failure record — cells whose supervised computation exhausted its
    retries and was quarantined.  A successful result always trumps a
    stale failure record, so a key is never both done and failed.
    """

    total: int
    done: int
    missing_keys: tuple
    failed_keys: tuple = ()

    @property
    def missing(self) -> int:
        return self.total - self.done

    @property
    def failed(self) -> int:
        return len(self.failed_keys)

    @property
    def complete(self) -> bool:
        return self.done == self.total


class ResultStore:
    """Content-addressed directory of per-cell JSON records."""

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)

    # -- paths -----------------------------------------------------------
    @property
    def path(self) -> Path:
        """The backend's filesystem anchor (the store directory).

        Part of the backend protocol (:mod:`repro.perf.backends`):
        consumers use it only to place *sibling* artifacts such as
        profile dumps, never to reach records.
        """
        return self.directory

    def record_path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    @property
    def index_path(self) -> Path:
        return self.directory / INDEX_NAME

    # -- records ---------------------------------------------------------
    def put(
        self,
        key: str,
        value: Any,
        *,
        kernel: Optional[str] = None,
        params: Optional[Dict[str, Any]] = None,
        index: bool = True,
    ) -> Dict[str, Any]:
        """Persist one cell result atomically; returns the record meta.

        ``value`` must be JSON-serializable (sweep rows pass
        ``dataclasses.asdict`` output).  ``kernel``/``params`` are
        stored alongside so records are self-describing — ``status``
        and debugging never need to re-derive what a hash meant.
        ``index=False`` skips the per-put index update; bulk writers
        use it and batch one :meth:`index_add` for the whole run.
        """
        meta: Dict[str, Any] = {"store_version": STORE_VERSION}
        if kernel is not None:
            meta["kernel"] = kernel
        if params is not None:
            meta["params"] = params
        record = {"value": value, "meta": meta}
        atomic_write_text(self.record_path(key), json.dumps(record, sort_keys=True))
        if index:
            self.index_add({key: meta})
        return meta

    def record(self, key: str) -> Optional[Dict[str, Any]]:
        """The full record dict for ``key``, or None if missing/corrupt."""
        try:
            record = json.loads(self.record_path(key).read_text())
        except (OSError, ValueError):
            return None
        if not isinstance(record, dict) or "value" not in record:
            return None
        return record

    def get(self, key: str) -> Optional[Any]:
        """The stored value for ``key``, or None if missing/corrupt."""
        record = self.record(key)
        return None if record is None else record["value"]

    def has(self, key: str) -> bool:
        """True iff ``key`` has a *readable* record (corrupt = missing)."""
        return self.record(key) is not None

    def keys(self) -> List[str]:
        """Keys of every readable record, from a directory scan."""
        if not self.directory.is_dir():
            return []
        found = []
        for path in sorted(self.directory.glob("*.json")):
            if path.name == INDEX_NAME:
                continue
            if self.has(path.stem):
                found.append(path.stem)
        return found

    def status(self, keys: Iterable[str]) -> StoreStatus:
        """Done/missing/failed split of ``keys`` against the records."""
        wanted = list(keys)
        missing = tuple(key for key in wanted if not self.has(key))
        failed = tuple(key for key in missing if self.failure(key) is not None)
        return StoreStatus(
            total=len(wanted),
            done=len(wanted) - len(missing),
            missing_keys=missing,
            failed_keys=failed,
        )

    # -- failure records -------------------------------------------------
    def failure_path(self, key: str) -> Path:
        return self.directory / FAILURE_DIR / f"{key}.json"

    def put_failure(
        self,
        key: str,
        failure: Dict[str, Any],
        *,
        kernel: Optional[str] = None,
        params: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """Persist one cell's terminal failure atomically.

        ``failure`` is the classified-failure dict
        (:meth:`repro.perf.supervise.CellFailure.as_record`: kind,
        exception type, message, attempts, traceback digest).  Failure
        records live under ``failures/`` — parallel to results, never
        shadowing them — so ``status`` can report quarantined cells and
        a later ``resume`` can still recompute them.
        """
        meta: Dict[str, Any] = {"store_version": STORE_VERSION}
        if kernel is not None:
            meta["kernel"] = kernel
        if params is not None:
            meta["params"] = params
        record = {"failure": dict(failure), "meta": meta}
        atomic_write_text(self.failure_path(key), json.dumps(record, sort_keys=True))
        return record

    def failure(self, key: str) -> Optional[Dict[str, Any]]:
        """The failure record for ``key``, or None (corrupt = none)."""
        try:
            record = json.loads(self.failure_path(key).read_text())
        except (OSError, ValueError):
            return None
        if not isinstance(record, dict) or not isinstance(
            record.get("failure"), dict
        ):
            return None
        return record

    def failure_keys(self) -> List[str]:
        """Keys of every readable failure record."""
        failure_dir = self.directory / FAILURE_DIR
        if not failure_dir.is_dir():
            return []
        return sorted(
            path.stem
            for path in failure_dir.glob("*.json")
            if self.failure(path.stem) is not None
        )

    def clear_failure(self, key: str) -> None:
        """Drop ``key``'s failure record (a later attempt succeeded)."""
        try:
            self.failure_path(key).unlink()
        except OSError:
            pass

    # -- fault injection -------------------------------------------------
    def chaos_tear(self, plan, key: str, params: Dict[str, Any]) -> bool:
        """Apply a scripted ``"corrupt"`` fault to ``key``; True if torn.

        The backend-protocol hook behind the chaos harness's torn-write
        fault (:meth:`repro.perf.chaos.ChaosPlan.corrupt_after_write`):
        here the record *is* a file, so the plan tears it in place.
        """
        return plan.corrupt_after_write(self.record_path(key), params)

    # -- index -----------------------------------------------------------
    @contextmanager
    def _locked(self) -> Iterator[None]:
        """Exclusive inter-process lock for index read-modify-write."""
        self.directory.mkdir(parents=True, exist_ok=True)
        with open(self.directory / LOCK_NAME, "a+") as handle:
            if fcntl is not None:
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            try:
                yield
            finally:
                if fcntl is not None:
                    fcntl.flock(handle.fileno(), fcntl.LOCK_UN)

    def read_index(self) -> Dict[str, Any]:
        """The advisory index mapping key -> record meta (may be stale)."""
        try:
            index = json.loads(self.index_path.read_text())
        except (OSError, ValueError):
            return {}
        records = index.get("records") if isinstance(index, dict) else None
        return records if isinstance(records, dict) else {}

    def _write_index(self, records: Dict[str, Any]) -> None:
        payload = {"store_version": STORE_VERSION, "records": records}
        atomic_write_text(self.index_path, json.dumps(payload, sort_keys=True))

    def index_add(self, entries: Dict[str, Any]) -> None:
        """Merge ``entries`` (key -> meta) into the index, under flock.

        One read-modify-write cycle regardless of batch size — callers
        writing many records pass them all at once.
        """
        with self._locked():
            records = self.read_index()
            records.update(entries)
            self._write_index(records)

    def rebuild_index(self) -> Dict[str, Any]:
        """Regenerate the index from the records actually on disk.

        Run after merging shard directories (each shard shipped its own
        ``index.json``; only one survives a file-level merge) or after
        any suspected index corruption.  Returns the rebuilt mapping.
        """
        with self._locked():
            records: Dict[str, Any] = {}
            if self.directory.is_dir():
                for path in sorted(self.directory.glob("*.json")):
                    if path.name == INDEX_NAME:
                        continue
                    record = self.record(path.stem)
                    if record is None:
                        continue  # corrupt record: not a result, not indexed
                    meta = record.get("meta")
                    records[path.stem] = meta if isinstance(meta, dict) else {}
            self._write_index(records)
            return records


#: Methods every store backend must offer; ``resolve_store`` accepts
#: any object with this surface (see :mod:`repro.perf.backends` for
#: the full protocol contract, including atomicity semantics).
BACKEND_SURFACE = (
    "put",
    "get",
    "record",
    "has",
    "keys",
    "status",
    "put_failure",
    "failure",
    "failure_keys",
    "clear_failure",
    "read_index",
    "index_add",
    "rebuild_index",
)


def resolve_store(store):
    """Normalize the ``store=`` knob the sweeps and tables expose.

    ``None`` -> no store (compute everything, persist nothing); a
    locator string (``fs:DIR`` / ``sqlite:PATH``, or a bare path for
    backward compatibility) -> the backend it names via
    :func:`repro.perf.backends.open_store`; any object with the full
    backend method surface (:data:`BACKEND_SURFACE`) -> itself.
    """
    if store is None:
        return None
    if isinstance(store, ResultStore):
        return store
    if isinstance(store, (str, Path)):
        from .backends import open_store

        return open_store(store)
    if all(hasattr(store, method) for method in BACKEND_SURFACE):
        return store
    raise TypeError(f"cannot interpret store={store!r}")
