"""Performance infrastructure: memoization, fan-out, durable results.

The design-space sweeps (Tables 4 and 5) and the hierarchy simulator
evaluate many independent, deterministic cells; this subsystem supplies
the generic accelerators they share:

* :mod:`repro.perf.memo` — a config-hash -> result memoization layer
  with an in-process LRU in front of an optional JSON file cache, so
  repeated sweeps (within one process or across runs) pay for each cell
  once;
* :mod:`repro.perf.parallel` — an opt-in ``workers=N`` process-pool map
  for the embarrassingly parallel sweep cells;
* :mod:`repro.perf.store` — a durable, content-addressed result store
  (atomic per-cell JSON records, ``flock``-guarded index) that sharded
  sweep workers on many hosts fill concurrently and ``merge`` reads
  back; its on-disk layout is :class:`SweepCache`-compatible;
* :mod:`repro.perf.backends` — the pluggable-store layer: the
  ``fs:DIR`` / ``sqlite:PATH`` locator syntax (:func:`open_store`),
  the backend method/atomicity contract, and the :class:`SqliteStore`
  backend holding a whole store in one SQLite database with records
  bit-identical to the filesystem layout;
* :mod:`repro.perf.tracecache` — a persistent, content-addressed cache
  of serialized movement traces (verified, corrupt-tolerant blobs with
  durable hit/miss counters), so repeated and resumed engine sweeps
  skip traffic simulation entirely;
* :mod:`repro.perf.supervise` — a fault-tolerant executor over the
  pool: retry with deterministic backoff, per-cell wall-clock deadlines
  (hung workers are reaped), ``BrokenProcessPool`` recovery, and
  classified terminal failures for quarantine;
* :mod:`repro.perf.chaos` — the deterministic fault-injection harness
  that proves the supervision semantics (scripted raise/transient/
  hang/exit/corrupt faults, reproducible across processes).

All are policy-free: callers pass ``cache=`` / ``workers=`` / ``store=``
/ ``supervise=`` / ``trace_cache=`` knobs and get identical numeric
results either way.  Under a shared ``REPRO_CACHE_DIR`` root each layer
owns its own namespace — ``memo/`` for the file cache, ``traces/`` for
trace blobs, ``store/`` (by convention) for result stores.
"""

from .backends import (
    SqliteStore,
    StoreBackendError,
    locator_path,
    open_store,
    parse_locator,
)
from .chaos import ChaosFault, ChaosPlan, ChaosTransientError, Fault
from .memo import SweepCache, default_cache, resolve_cache, stable_key
from .parallel import parallel_iter, parallel_map
from .store import ResultStore, StoreStatus, atomic_write_text, resolve_store
from .tracecache import TraceCache, default_trace_cache, resolve_trace_cache
from .supervise import (
    CellFailure,
    CellOutcome,
    CellTimeout,
    RetryPolicy,
    Supervision,
    TooManyFailures,
    WorkerCrash,
    supervised_indexed,
)

__all__ = [
    "CellFailure",
    "CellOutcome",
    "CellTimeout",
    "ChaosFault",
    "ChaosPlan",
    "ChaosTransientError",
    "Fault",
    "ResultStore",
    "RetryPolicy",
    "SqliteStore",
    "StoreBackendError",
    "StoreStatus",
    "Supervision",
    "SweepCache",
    "TooManyFailures",
    "TraceCache",
    "WorkerCrash",
    "atomic_write_text",
    "default_cache",
    "default_trace_cache",
    "locator_path",
    "open_store",
    "parallel_iter",
    "parallel_map",
    "parse_locator",
    "resolve_cache",
    "resolve_store",
    "resolve_trace_cache",
    "stable_key",
    "supervised_indexed",
]
