"""Performance infrastructure: memoization, fan-out, durable results.

The design-space sweeps (Tables 4 and 5) and the hierarchy simulator
evaluate many independent, deterministic cells; this subsystem supplies
the generic accelerators they share:

* :mod:`repro.perf.memo` — a config-hash -> result memoization layer
  with an in-process LRU in front of an optional JSON file cache, so
  repeated sweeps (within one process or across runs) pay for each cell
  once;
* :mod:`repro.perf.parallel` — an opt-in ``workers=N`` process-pool map
  for the embarrassingly parallel sweep cells;
* :mod:`repro.perf.store` — a durable, content-addressed result store
  (atomic per-cell JSON records, ``flock``-guarded index) that sharded
  sweep workers on many hosts fill concurrently and ``merge`` reads
  back; its on-disk layout is ``REPRO_CACHE_DIR``-compatible.

All are policy-free: callers pass ``cache=`` / ``workers=`` / ``store=``
knobs and get identical numeric results either way.
"""

from .memo import SweepCache, default_cache, resolve_cache, stable_key
from .parallel import parallel_iter, parallel_map
from .store import ResultStore, StoreStatus, atomic_write_text, resolve_store

__all__ = [
    "ResultStore",
    "StoreStatus",
    "SweepCache",
    "atomic_write_text",
    "default_cache",
    "parallel_iter",
    "parallel_map",
    "resolve_cache",
    "resolve_store",
    "stable_key",
]
