"""Performance infrastructure: persistent memoization and fan-out.

The design-space sweeps (Tables 4 and 5) and the hierarchy simulator
evaluate many independent, deterministic cells; this subsystem supplies
the two generic accelerators they share:

* :mod:`repro.perf.memo` — a config-hash -> result memoization layer
  with an in-process LRU in front of an optional JSON file cache, so
  repeated sweeps (within one process or across runs) pay for each cell
  once;
* :mod:`repro.perf.parallel` — an opt-in ``workers=N`` process-pool map
  for the embarrassingly parallel sweep cells.

Both are policy-free: callers pass ``cache=`` / ``workers=`` knobs and
get identical numeric results either way.
"""

from .memo import SweepCache, default_cache, resolve_cache, stable_key
from .parallel import parallel_map

__all__ = [
    "SweepCache",
    "default_cache",
    "parallel_map",
    "resolve_cache",
    "stable_key",
]
