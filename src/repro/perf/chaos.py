"""Deterministic fault injection for the sweep execution layer.

The supervised runner (:mod:`repro.perf.supervise`) promises retry,
timeout-reaping, crash recovery, and quarantine semantics; this module
is the harness that *proves* them.  A :class:`ChaosPlan` scripts faults
against sweep cells by parameter match, and because the plan travels
through one environment variable (:data:`CHAOS_ENV`), the exact same
script reaches serial runs, pool workers, and the ``python -m
repro.sweep`` CLI — tests and the CI chaos job replay identical fault
sequences on every machine.

Fault kinds (the fleet failure taxonomy the runner must survive):

* ``"raise"`` — a *poison* cell: every attempt raises
  :class:`ChaosFault`, so retries exhaust and the cell is quarantined;
* ``"transient"`` — the first ``times`` attempts raise
  :class:`ChaosTransientError`, then the cell succeeds (retry proof);
* ``"hang"`` — the first ``times`` attempts sleep far past any
  reasonable deadline (timeout-reaping proof);
* ``"exit"`` — the first ``times`` attempts kill the worker process
  with ``os._exit`` (``BrokenProcessPool`` recovery proof);
* ``"corrupt"`` — the cell computes normally but its just-written store
  record is truncated afterwards (torn-record tolerance proof; applied
  by the runner's persist hook, not inside the cell).

Attempt counting for ``times``-bounded faults crosses process
boundaries through append-only marker files in ``state_dir`` — a fork
or a freshly reaped worker sees the same attempt number the supervisor
does, so fault sequences are reproducible, never racy.

This harness scripts *infrastructure* failures around any cell kernel.
The physics-level error injection of :mod:`repro.ecc.fault_injection`
(Pauli faults inside EC circuits) is a different instrument entirely
and is untouched by this module.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

#: Environment variable carrying the JSON-encoded plan.  Pool workers
#: inherit the environment, so one export scripts every process of a
#: sweep; unset means chaos is completely inert.
CHAOS_ENV = "REPRO_CHAOS"

#: Fault kinds a plan may script.
FAULT_KINDS = ("raise", "transient", "hang", "exit", "corrupt")


class ChaosFault(RuntimeError):
    """A scripted (poison) cell failure."""


class ChaosTransientError(ChaosFault):
    """A scripted failure that stops recurring after ``times`` attempts."""


@dataclass(frozen=True)
class Fault:
    """One scripted fault: a kind plus the cell parameters it targets.

    ``match`` is a canonically sorted subset of cell parameters; a cell
    is hit when every listed (name, value) pair equals the cell's.
    ``times`` bounds how many attempts misbehave (``None`` = every
    attempt — the poison default for ``"raise"``).
    """

    kind: str
    match: Tuple[Tuple[str, Any], ...]
    times: Optional[int] = 1
    hang_s: float = 3600.0
    exit_code: int = 9

    @staticmethod
    def make(
        kind: str,
        match: Mapping[str, Any],
        *,
        times: Optional[int] = None,
        hang_s: float = 3600.0,
        exit_code: int = 9,
    ) -> "Fault":
        """Build a fault with per-kind ``times`` defaults validated."""
        if kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {kind!r} (one of {FAULT_KINDS})")
        if times is None and kind != "raise":
            times = 1  # bounded by default: the cell recovers on retry
        return Fault(
            kind=kind,
            match=tuple(sorted(match.items())),
            times=times,
            hang_s=hang_s,
            exit_code=exit_code,
        )

    def matches(self, params: Mapping[str, Any]) -> bool:
        return all(params.get(name) == value for name, value in self.match)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "fault": self.kind,
            "match": dict(self.match),
            "times": self.times,
            "hang_s": self.hang_s,
            "exit_code": self.exit_code,
        }


@dataclass(frozen=True)
class ChaosPlan:
    """An ordered fault script plus the shared attempt-counter directory."""

    faults: Tuple[Fault, ...]
    state_dir: Optional[str] = None

    def __post_init__(self) -> None:
        needs_state = [f for f in self.faults if f.times is not None]
        if needs_state and not self.state_dir:
            raise ValueError(
                "a chaos plan with times-bounded faults needs a state_dir "
                "to count attempts across processes"
            )

    @staticmethod
    def scripted(
        faults: Sequence[Union[Fault, Mapping[str, Any]]],
        state_dir: Optional[Union[str, Path]] = None,
    ) -> "ChaosPlan":
        """Build a plan from :class:`Fault` objects or JSON-shaped dicts."""
        built = []
        for entry in faults:
            if isinstance(entry, Fault):
                built.append(entry)
                continue
            spec = dict(entry)
            built.append(
                Fault.make(
                    spec.pop("fault"),
                    spec.pop("match"),
                    **{
                        key: spec[key]
                        for key in ("times", "hang_s", "exit_code")
                        if key in spec
                    },
                )
            )
        return ChaosPlan(
            faults=tuple(built),
            state_dir=None if state_dir is None else str(state_dir),
        )

    # -- serialization (the env-var wire format) -------------------------
    def to_json(self) -> str:
        return json.dumps(
            {
                "state_dir": self.state_dir,
                "faults": [fault.as_dict() for fault in self.faults],
            },
            sort_keys=True,
        )

    @staticmethod
    def from_json(text: str) -> "ChaosPlan":
        spec = json.loads(text)
        return ChaosPlan.scripted(spec.get("faults", ()), spec.get("state_dir"))

    # -- execution -------------------------------------------------------
    def fault_for(self, params: Mapping[str, Any]) -> Optional[Fault]:
        """The first scripted fault matching this cell, or None."""
        for fault in self.faults:
            if fault.matches(params):
                return fault
        return None

    def _attempt(self, fault: Fault, params: Mapping[str, Any]) -> int:
        """Bump and return this fault's cross-process attempt number.

        One byte appended per attempt to a marker file named by the
        fault's digest; ``O_APPEND`` makes concurrent bumps safe and the
        post-write offset *is* the attempt count.
        """
        digest = hashlib.sha256(
            json.dumps(
                {
                    "kind": fault.kind,
                    "match": dict(fault.match),
                    "params": dict(params),
                },
                sort_keys=True,
                default=str,
            ).encode("utf-8")
        ).hexdigest()[:24]
        marker = Path(self.state_dir) / f"{digest}.attempts"
        marker.parent.mkdir(parents=True, exist_ok=True)
        with open(marker, "ab") as handle:
            handle.write(b".")
            handle.flush()
            return handle.tell()

    def _armed(self, fault: Fault, params: Mapping[str, Any]) -> bool:
        if fault.times is None:
            return True
        return self._attempt(fault, params) <= fault.times

    def before_cell(self, params: Mapping[str, Any]) -> None:
        """Run the scripted in-cell fault, if any (worker side).

        Called by :class:`ChaosWrapped` before the real kernel;
        ``"corrupt"`` faults do nothing here (they fire after the store
        write, via :meth:`corrupt_after_write`).
        """
        fault = self.fault_for(params)
        if fault is None or fault.kind == "corrupt":
            return
        if not self._armed(fault, params):
            return
        if fault.kind == "raise":
            raise ChaosFault(f"chaos: scripted poison cell ({dict(fault.match)})")
        if fault.kind == "transient":
            raise ChaosTransientError(
                f"chaos: scripted transient fault ({dict(fault.match)})"
            )
        if fault.kind == "hang":
            time.sleep(fault.hang_s)
            return
        if fault.kind == "exit":  # pragma: no cover - kills the process
            os._exit(fault.exit_code)

    def corrupt_after_write(
        self, path: Union[str, Path], params: Mapping[str, Any]
    ) -> bool:
        """Truncate a just-written record if scripted to; True if torn.

        Models a power-loss-style tear *after* the atomic rename: the
        record exists but is not valid JSON, so readers must treat it
        as missing and a resume must recompute it.
        """
        fault = self.fault_for(params)
        if fault is None or fault.kind != "corrupt":
            return False
        if not self._armed(fault, params):
            return False
        path = Path(path)
        text = path.read_text()
        path.write_text(text[: max(1, len(text) // 2)])
        return True


@dataclass
class ChaosWrapped:
    """A picklable kernel wrapper consulting the env plan at call time.

    Wrapping keeps the kernel itself chaos-free: the plan is read from
    the environment *inside the worker process*, so pool workers (and
    workers restarted after a reap) see the same script the supervisor
    does.
    """

    fn: Callable[[Mapping[str, Any]], Any]

    def __call__(self, params: Mapping[str, Any]) -> Any:
        plan = active_plan()
        if plan is not None:
            plan.before_cell(params)
        return self.fn(params)


def wrap(fn: Callable[[Mapping[str, Any]], Any]) -> ChaosWrapped:
    """Wrap a cell kernel so scripted faults fire before it runs."""
    return ChaosWrapped(fn)


def wrap_if_active(
    fn: Callable[[Mapping[str, Any]], Any],
) -> Callable[[Mapping[str, Any]], Any]:
    """``wrap(fn)`` when a plan is installed, else ``fn`` unchanged.

    The runner calls this on every grid execution; with no plan in the
    environment the kernel passes through untouched, so production runs
    pay nothing.
    """
    return wrap(fn) if os.environ.get(CHAOS_ENV) else fn


#: One-entry parse cache: (env text, parsed plan).
_PLAN_CACHE: Tuple[Optional[str], Optional[ChaosPlan]] = (None, None)


def active_plan() -> Optional[ChaosPlan]:
    """The plan installed in the environment, or None.

    Parsing is cached per env value, so per-cell lookups cost a dict
    probe; a malformed plan raises immediately (a chaos run with a
    broken script must never silently run fault-free).
    """
    global _PLAN_CACHE
    text = os.environ.get(CHAOS_ENV)
    if not text:
        return None
    cached_text, cached_plan = _PLAN_CACHE
    if text != cached_text:
        cached_plan = ChaosPlan.from_json(text)
        _PLAN_CACHE = (text, cached_plan)
    return cached_plan


@contextmanager
def active(plan: Optional[ChaosPlan]) -> Iterator[Optional[ChaosPlan]]:
    """Install ``plan`` in the environment for the dynamic extent.

    Processes forked inside the block (pool workers) inherit it; the
    previous value is restored on exit.  ``active(None)`` masks any
    ambient plan.
    """
    previous = os.environ.get(CHAOS_ENV)
    try:
        if plan is None:
            os.environ.pop(CHAOS_ENV, None)
        else:
            os.environ[CHAOS_ENV] = plan.to_json()
        yield plan
    finally:
        if previous is None:
            os.environ.pop(CHAOS_ENV, None)
        else:
            os.environ[CHAOS_ENV] = previous
