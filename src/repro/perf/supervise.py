"""Supervised cell execution: retries, deadlines, crash recovery.

:func:`repro.perf.parallel.parallel_indexed` is the bare fan-out — one
raising cell aborts the iteration, a hung cell blocks it forever, and a
dead worker process takes the whole pool down.  This module wraps the
same contract (yield ``(index, result)``-shaped outcomes in completion
order) in the fault model of a real fleet scheduler:

* **Retries** — a :class:`RetryPolicy` bounds attempts per cell, with
  exponential backoff and *deterministic* seeded jitter (two runs of the
  same sweep back off identically) and exception allow/deny lists.
* **Deadlines** — ``ProcessPoolExecutor`` cannot cancel a running
  future, so the supervisor keeps a *restartable* pool: when a cell
  overruns ``cell_timeout_s`` the worker processes are terminated, the
  timed-out cell is charged an attempt, and every innocent in-flight
  cell is resubmitted uncharged to a fresh pool.
* **Crash recovery** — a worker dying mid-cell (``os._exit``, OOM kill,
  segfault) breaks the pool; the supervisor rebuilds it and resubmits
  only the cells that were in flight, never finished work.
* **Classification** — a cell that exhausts its attempts yields a
  :class:`CellFailure` (kind, exception type, attempts, traceback
  digest) instead of raising, so callers can quarantine it and keep
  going; ``max_failures`` bounds how much quarantine a run tolerates.

The zero-retry, no-deadline configuration is the *identity wrapper*:
cells run exactly once through the same pool shape as the bare fan-out,
so fault-free supervised sweeps are bit-identical to unsupervised ones
(pinned by ``tests/test_supervise.py``).
"""

from __future__ import annotations

import hashlib
import heapq
import time
import traceback
from collections import deque
from dataclasses import asdict, dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
    TypeVar,
)

T = TypeVar("T")


class CellTimeout(RuntimeError):
    """A cell overran its wall-clock deadline and its worker was reaped."""


class WorkerCrash(RuntimeError):
    """A worker process died (exit/kill/segfault) while cells were in flight."""


class TooManyFailures(RuntimeError):
    """Terminal failures exceeded ``Supervision.max_failures``; run aborted."""


def exception_names(exc: BaseException) -> Tuple[str, ...]:
    """The exception's class name plus every base class name.

    Retry allow/deny lists match against any of these, so a policy can
    name a base family (``"ChaosFault"``) and cover its subclasses.
    """
    return tuple(
        cls.__name__ for cls in type(exc).__mro__ if cls is not object
    )


@dataclass(frozen=True)
class RetryPolicy:
    """How many times a failing cell is retried, and how it backs off.

    ``max_attempts`` counts *total* attempts (1 = never retry).  The
    backoff before attempt ``n+1`` is ``backoff_base_s *
    backoff_factor**(n-1)``, stretched by up to ``jitter`` (a fraction)
    of deterministic, seeded noise — reproducible runs, but no
    thundering herd when many cells fail together.  ``retry_on``
    (non-empty = only these exception names retry) and ``no_retry_on``
    (these never retry, deny wins) filter by exception class name,
    matching any name in the exception's MRO.
    """

    max_attempts: int = 1
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    jitter: float = 0.1
    seed: int = 0
    retry_on: Tuple[str, ...] = ()
    no_retry_on: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")

    def should_retry(self, names: Iterable[str], attempt: int) -> bool:
        """Whether a failure with these exception names gets attempt+1."""
        if attempt >= self.max_attempts:
            return False
        seen = set(names)
        if seen & set(self.no_retry_on):
            return False
        if self.retry_on and not (seen & set(self.retry_on)):
            return False
        return True

    def delay_s(self, attempt: int, token: str = "") -> float:
        """Backoff before retrying after attempt ``attempt`` (1-based).

        Deterministic: the jitter fraction is drawn from a hash of
        ``(seed, token, attempt)``, so reruns sleep identically and
        distinct cells (distinct tokens) de-synchronize.
        """
        base = self.backoff_base_s * self.backoff_factor ** (attempt - 1)
        if base <= 0.0:
            return 0.0
        digest = hashlib.sha256(
            f"retry:{self.seed}:{token}:{attempt}".encode("utf-8")
        ).digest()
        unit = int.from_bytes(digest[:8], "big") / 2.0**64
        return base * (1.0 + self.jitter * unit)


@dataclass(frozen=True)
class Supervision:
    """The full supervision contract one grid execution runs under.

    The default is the identity configuration: one attempt, no
    deadline, unlimited failures, quarantine on — fault-free runs are
    bit-identical to the unsupervised runner.  ``quarantine=False``
    restores fail-fast semantics (the first terminal failure raises
    out of :func:`repro.sweep.runner.compute_grid`).
    """

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    cell_timeout_s: Optional[float] = None
    max_failures: Optional[int] = None
    quarantine: bool = True


@dataclass(frozen=True)
class CellFailure:
    """A cell's terminal (retries-exhausted) failure, classified.

    ``kind`` is one of ``"exception"`` (the cell raised), ``"timeout"``
    (reaped past its deadline), or ``"crash"`` (its worker process
    died).  ``traceback_digest`` is a short stable hash of the
    formatted traceback — enough to see that two failures are the same
    bug without persisting whole tracebacks into the store.
    """

    kind: str
    exception_type: str
    message: str
    attempts: int
    traceback_digest: str

    def as_record(self) -> Dict[str, Any]:
        """The JSON shape persisted by ``ResultStore.put_failure``."""
        return asdict(self)


@dataclass(frozen=True)
class CellOutcome:
    """One cell's final result: a value or a classified failure."""

    index: int
    value: Any = None
    failure: Optional[CellFailure] = None
    attempts: int = 1

    @property
    def ok(self) -> bool:
        return self.failure is None


def classify_failure(exc: BaseException, attempts: int) -> CellFailure:
    """Build the terminal :class:`CellFailure` for an exception."""
    if isinstance(exc, CellTimeout):
        kind = "timeout"
    elif isinstance(exc, WorkerCrash):
        kind = "crash"
    else:
        kind = "exception"
    formatted = "".join(
        traceback.format_exception(type(exc), exc, exc.__traceback__)
    )
    return CellFailure(
        kind=kind,
        exception_type=type(exc).__name__,
        message=str(exc),
        attempts=attempts,
        traceback_digest=hashlib.sha256(formatted.encode("utf-8")).hexdigest()[:12],
    )


def supervised_indexed(
    fn: Callable[[T], Any],
    items: Iterable[T],
    *,
    supervision: Supervision,
    workers: Optional[int] = None,
    weights: Optional[Iterable[float]] = None,
) -> Iterator[CellOutcome]:
    """Yield a :class:`CellOutcome` per item, in completion order.

    The supervised analogue of
    :func:`repro.perf.parallel.parallel_indexed`: same serial/pool mode
    selection, same completion-order streaming, but a failing, hanging,
    or crashing cell yields a failure outcome (after retries) instead
    of killing the iteration.  A ``cell_timeout_s`` forces pool mode
    even for ``workers<=1`` — deadlines can only be enforced on work
    that runs in a reapable child process.

    ``weights`` (one positive factor per item, default 1.0) scales each
    item's deadline: a group-shaped item covering G cells gets
    ``G * cell_timeout_s`` of wall clock before it is reaped, so
    batching never tightens the effective per-cell budget.  Retry
    accounting is unaffected — an item is one unit of work and each
    failure charges it exactly one attempt, however many cells it
    carries.

    Raises :class:`TooManyFailures` once terminal failures exceed
    ``supervision.max_failures`` (``None`` = unlimited).
    """
    cells = list(items)
    if workers is not None and workers < 0:
        raise ValueError("workers cannot be negative")
    scale: Optional[List[float]] = None
    if weights is not None:
        scale = [float(w) for w in weights]
        if len(scale) != len(cells):
            raise ValueError(
                f"weights must match items ({len(scale)} != {len(cells)})"
            )
        if any(w <= 0.0 for w in scale):
            raise ValueError("weights must be positive")
    serial = not workers or workers <= 1 or len(cells) <= 1
    if serial and supervision.cell_timeout_s is None:
        return _supervised_serial(fn, cells, supervision)
    return _supervised_pool(fn, cells, max(1, workers or 1), supervision, scale)


def _check_budget(failures: int, supervision: Supervision) -> None:
    if (
        supervision.max_failures is not None
        and failures > supervision.max_failures
    ):
        raise TooManyFailures(
            f"{failures} cells failed terminally "
            f"(max_failures={supervision.max_failures})"
        )


def _supervised_serial(
    fn: Callable[[T], Any], cells: List[T], supervision: Supervision
) -> Iterator[CellOutcome]:
    failures = 0
    for index, cell in enumerate(cells):
        attempt = 0
        while True:
            attempt += 1
            try:
                value = fn(cell)
            except Exception as exc:
                if supervision.retry.should_retry(exception_names(exc), attempt):
                    time.sleep(supervision.retry.delay_s(attempt, token=str(index)))
                    continue
                failures += 1
                yield CellOutcome(
                    index,
                    failure=classify_failure(exc, attempt),
                    attempts=attempt,
                )
                _check_budget(failures, supervision)
                break
            yield CellOutcome(index, value=value, attempts=attempt)
            break


def _terminate_workers(pool: Any) -> None:
    """Forcibly kill a pool's worker processes (reaping hung cells).

    ``ProcessPoolExecutor`` exposes no cancellation for a *running*
    future, so the only way to reclaim a hung worker is to terminate
    the process; the pool then reports broken and is rebuilt.
    """
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.terminate()
        except Exception:  # pragma: no cover - already-dead worker
            pass


def _supervised_pool(
    fn: Callable[[T], Any],
    cells: List[T],
    workers: int,
    supervision: Supervision,
    weights: Optional[List[float]] = None,
) -> Iterator[CellOutcome]:
    from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
    from concurrent.futures.process import BrokenProcessPool

    max_workers = max(1, min(workers, len(cells)))
    pool = ProcessPoolExecutor(max_workers=max_workers)
    pool_broken = False
    attempts: Dict[int, int] = {}
    ready: deque = deque(range(len(cells)))
    delayed: List[Tuple[float, int]] = []  # (not-before, index) backoff heap
    inflight: Dict[Any, int] = {}  # future -> index
    deadlines: Dict[Any, float] = {}  # future -> monotonic deadline
    failures = 0

    def resolve_failure(index: int, exc: BaseException) -> Optional[CellOutcome]:
        """Schedule a retry (None) or produce the terminal outcome."""
        nonlocal failures
        if supervision.retry.should_retry(exception_names(exc), attempts[index]):
            not_before = time.monotonic() + supervision.retry.delay_s(
                attempts[index], token=str(index)
            )
            heapq.heappush(delayed, (not_before, index))
            return None
        failures += 1
        return CellOutcome(
            index,
            failure=classify_failure(exc, attempts[index]),
            attempts=attempts[index],
        )

    def restart_pool() -> None:
        nonlocal pool, pool_broken
        _terminate_workers(pool)
        pool.shutdown(wait=False, cancel_futures=True)
        pool = ProcessPoolExecutor(max_workers=max_workers)
        pool_broken = False

    def submit_ready() -> None:
        nonlocal pool_broken
        now = time.monotonic()
        while delayed and delayed[0][0] <= now:
            ready.append(heapq.heappop(delayed)[1])
        while ready and len(inflight) < max_workers:
            if pool_broken:
                restart_pool()
            index = ready.popleft()
            attempts[index] = attempts.get(index, 0) + 1
            try:
                future = pool.submit(fn, cells[index])
            except BrokenProcessPool:
                attempts[index] -= 1
                ready.appendleft(index)
                pool_broken = True
                continue
            inflight[future] = index
            if supervision.cell_timeout_s is not None:
                allowance = supervision.cell_timeout_s
                if weights is not None:
                    allowance *= weights[index]
                deadlines[future] = time.monotonic() + allowance

    try:
        while ready or delayed or inflight:
            submit_ready()
            if not inflight:
                # Every remaining cell is backing off: sleep to the
                # earliest retry time and resubmit.
                time.sleep(max(0.0, delayed[0][0] - time.monotonic()))
                continue
            timeout = None
            if deadlines:
                timeout = min(deadlines.values()) - time.monotonic()
            if delayed:
                wake = delayed[0][0] - time.monotonic()
                timeout = wake if timeout is None else min(timeout, wake)
            done, _ = wait(
                set(inflight),
                timeout=None if timeout is None else max(0.0, timeout),
                return_when=FIRST_COMPLETED,
            )
            # Index order within a batch keeps multi-failure runs
            # deterministic; cross-batch order is completion order,
            # exactly like the bare fan-out.
            for future in sorted(done, key=inflight.__getitem__):
                index = inflight.pop(future)
                deadlines.pop(future, None)
                if future.cancelled():
                    # A pool restart cancelled this doomed sibling
                    # before its BrokenProcessPool landed; same guilt
                    # model as a crash.
                    exc: Optional[BaseException] = WorkerCrash(
                        "worker pool was torn down while this cell was in flight"
                    )
                else:
                    exc = future.exception()
                if exc is None:
                    yield CellOutcome(
                        index, value=future.result(), attempts=attempts[index]
                    )
                    continue
                if isinstance(exc, BrokenProcessPool):
                    # The guilty cell is indistinguishable from its
                    # siblings, so every in-flight cell is charged a
                    # "crash" attempt; innocents recompute cheaply and
                    # deterministically on retry.
                    pool_broken = True
                    exc = WorkerCrash(
                        "worker process died while this cell was in flight"
                    )
                outcome = resolve_failure(index, exc)
                if outcome is not None:
                    yield outcome
                    _check_budget(failures, supervision)
            now = time.monotonic()
            expired = {
                future
                for future, deadline in deadlines.items()
                if deadline <= now and future in inflight
            }
            if expired:
                # Reap: kill every worker (the hung one cannot be
                # cancelled any other way), charge only the overrun
                # cells, and resubmit innocents uncharged.
                overrun = sorted(inflight[future] for future in expired)
                innocents = sorted(
                    index
                    for future, index in inflight.items()
                    if future not in expired
                )
                inflight.clear()
                deadlines.clear()
                restart_pool()
                for index in innocents:
                    attempts[index] -= 1
                    ready.append(index)
                for index in overrun:
                    outcome = resolve_failure(
                        index,
                        CellTimeout(
                            f"cell exceeded its {supervision.cell_timeout_s}s "
                            f"wall-clock deadline and its worker was reaped"
                        ),
                    )
                    if outcome is not None:
                        yield outcome
                        _check_budget(failures, supervision)
    finally:
        _terminate_workers(pool)
        pool.shutdown(wait=False, cancel_futures=True)
