"""Logical-gate intermediate representation.

Gates here are *logical*: they act on encoded qubits and each is
followed by an error-correction step in the timing model.  The paper's
cost convention (Section 5.1/6) is captured by ``ec_slots``: a
fault-tolerant Toffoli costs fifteen two-qubit gate periods, every other
gate costs one.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple


class GateKind(enum.Enum):
    """Logical gate vocabulary used by the workloads."""

    X = "x"
    Z = "z"
    H = "h"
    S = "s"
    T = "t"
    CNOT = "cnot"
    CPHASE = "cphase"
    TOFFOLI = "toffoli"
    MEASURE = "measure"

    @property
    def n_qubits(self) -> int:
        return _ARITY[self]

    @property
    def ec_slots(self) -> int:
        """Duration in gate-EC periods (Toffoli = 15, Section 5.1)."""
        return 15 if self is GateKind.TOFFOLI else 1

    @property
    def is_classical(self) -> bool:
        """True when the gate permutes computational-basis states."""
        return self in (GateKind.X, GateKind.CNOT, GateKind.TOFFOLI)


_ARITY = {
    GateKind.X: 1,
    GateKind.Z: 1,
    GateKind.H: 1,
    GateKind.S: 1,
    GateKind.T: 1,
    GateKind.CNOT: 2,
    GateKind.CPHASE: 2,
    GateKind.TOFFOLI: 3,
    GateKind.MEASURE: 1,
}

#: Logical qubits participating in one fault-tolerant Toffoli, including
#: the extra logical ancilla and cat-state qubits (Section 5.1's
#: "flow of data between these nine qubits").
TOFFOLI_TRAFFIC_QUBITS = 9


@dataclass(frozen=True)
class Gate:
    """One logical gate on integer qubit ids.

    ``param`` carries the rotation order for controlled-phase gates
    (``R_k`` in the QFT); it is zero elsewhere.
    """

    kind: GateKind
    qubits: Tuple[int, ...]
    param: int = 0

    def __post_init__(self) -> None:
        if len(self.qubits) != self.kind.n_qubits:
            raise ValueError(
                f"{self.kind.value} takes {self.kind.n_qubits} qubits, "
                f"got {len(self.qubits)}"
            )
        if len(set(self.qubits)) != len(self.qubits):
            raise ValueError(f"duplicate qubits in {self.kind.value} gate")
        if any(q < 0 for q in self.qubits):
            raise ValueError("qubit ids must be non-negative")

    @property
    def ec_slots(self) -> int:
        return self.kind.ec_slots

    def label(self) -> str:
        args = " ".join(f"q{q}" for q in self.qubits)
        if self.kind is GateKind.CPHASE:
            return f"{self.kind.value} {args} {self.param}"
        return f"{self.kind.value} {args}"


def x_gate(q: int) -> Gate:
    return Gate(GateKind.X, (q,))


def h_gate(q: int) -> Gate:
    return Gate(GateKind.H, (q,))


def cnot_gate(control: int, target: int) -> Gate:
    return Gate(GateKind.CNOT, (control, target))


def cphase_gate(control: int, target: int, order: int) -> Gate:
    """Controlled ``R_order`` phase rotation (QFT building block)."""
    if order < 1:
        raise ValueError("rotation order must be >= 1")
    return Gate(GateKind.CPHASE, (control, target), param=order)


def toffoli_gate(c1: int, c2: int, target: int) -> Gate:
    return Gate(GateKind.TOFFOLI, (c1, c2, target))
