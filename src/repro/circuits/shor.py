"""End-to-end Shor's-algorithm resource model (Section 6).

Combines the two components the paper analyzes — modular exponentiation
(Toffoli-dominated, Section 6.1) and the quantum Fourier transform
(communication-dominated) — into a single factoring-instance estimate:
logical qubits, serial gate slots, wall-clock time on a CQLA design,
and the K*Q reliability product the fidelity budget consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

from .modexp import modexp_logical_qubits, serial_adder_depth
from .qft import qft_gate_counts


@dataclass(frozen=True)
class ShorEstimate:
    """Resource estimate for factoring one n-bit number."""

    n_bits: int
    logical_qubits: int
    modexp_serial_adders: int
    qft_gates: int
    modexp_time_s: float
    qft_time_s: float

    @property
    def total_time_s(self) -> float:
        return self.modexp_time_s + self.qft_time_s

    @property
    def total_time_hours(self) -> float:
        return self.total_time_s / 3600.0

    @property
    def total_time_days(self) -> float:
        return self.total_time_s / 86400.0

    @property
    def qft_fraction(self) -> float:
        """QFT share of total runtime — small, per Section 6.1."""
        return self.qft_time_s / self.total_time_s if self.total_time_s else 0.0


def shor_estimate(code_key: str, n_bits: int, n_blocks: int) -> ShorEstimate:
    """Estimate a Shor run on a CQLA design point.

    Modular exponentiation runs at level 2 on the design's compute
    blocks; the QFT (2n-qubit register) is appended at the same level.
    """
    from ..ecc.concatenated import by_key
    from ..sim.scheduler import adder_balanced_slots
    from .qft import qft_gate_counts

    code = by_key(code_key)
    op_s = code.logical_op_time_s(2)
    adders = serial_adder_depth(n_bits)
    adder_slots = adder_balanced_slots(n_bits, n_blocks)
    modexp_time = adders * adder_slots * op_s

    qft_width = 2 * n_bits  # the phase-estimation register
    h_count, cp_count = qft_gate_counts(qft_width)
    # Controlled-phase gates cost two two-qubit slots; rotations fold in.
    qft_time = (2 * cp_count + h_count) * op_s
    return ShorEstimate(
        n_bits=n_bits,
        logical_qubits=modexp_logical_qubits(n_bits) + qft_width,
        modexp_serial_adders=adders,
        qft_gates=h_count + cp_count,
        modexp_time_s=modexp_time,
        qft_time_s=qft_time,
    )


def shor_kq(code_key: str, n_bits: int, n_blocks: int) -> float:
    """K*Q of the full factoring run (fidelity-budget input)."""
    from ..sim.scheduler import adder_balanced_slots

    estimate = shor_estimate(code_key, n_bits, n_blocks)
    slots = estimate.modexp_serial_adders * adder_balanced_slots(
        n_bits, n_blocks
    ) + 2 * estimate.qft_gates
    return float(slots) * estimate.logical_qubits
