"""Quantum Fourier Transform circuit (Section 6.1).

The QFT over ``n`` qubits: a Hadamard per qubit and a controlled-phase
rotation ``R_k`` between every qubit pair — ``n(n-1)/2`` two-qubit gates
requiring all-to-all personalized communication, the paper's stress test
for the CQLA's communication infrastructure.

``approximation_degree`` truncates rotations smaller than ``R_k`` (the
standard banded/approximate QFT); the paper's study uses the exact form.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from .circuit import Circuit
from .gates import cphase_gate, h_gate


def qft_circuit(n: int, approximation_degree: Optional[int] = None) -> Circuit:
    """Build the (optionally approximate) QFT on ``n`` qubits.

    Qubit 0 is the most significant; the final swap network is omitted
    (it is a relabeling for the architecture study).
    """
    if n < 1:
        raise ValueError("QFT needs at least one qubit")
    if approximation_degree is not None and approximation_degree < 1:
        raise ValueError("approximation degree must be >= 1")
    circuit = Circuit(n_qubits=n, name=f"qft-{n}")
    for target in range(n):
        circuit.append(h_gate(target))
        for control in range(target + 1, n):
            order = control - target + 1
            if approximation_degree is not None and order > approximation_degree:
                break
            circuit.append(cphase_gate(control, target, order))
    return circuit


def qft_gate_counts(n: int) -> Tuple[int, int]:
    """(Hadamards, controlled-phase gates) of the exact QFT."""
    return n, n * (n - 1) // 2


@dataclass(frozen=True)
class QftCommunication:
    """All-to-all personalized communication demand of the QFT.

    Every controlled-phase gate requires its two operands co-located; on
    the CQLA mesh that is one personalized message per qubit pair.
    """

    n: int

    @property
    def messages(self) -> int:
        return self.n * (self.n - 1) // 2

    def pair_list(self) -> List[Tuple[int, int]]:
        return [(i, j) for i in range(self.n) for j in range(i + 1, self.n)]
