"""Quantum modular exponentiation workload model (Sections 5.1, 6.1).

Modular exponentiation dominates Shor's algorithm: ``2n`` controlled
modular multiplications, each reducible to conditional modular additions
performed by the Draper carry-lookahead adder.  Following the paper's
maximal-parallelism code generators, the conditional additions inside a
multiplication are combined in a logarithmic tree, so the *serial* adder
depth per multiplication is ``ceil(lg n)`` plus a constant number of
modular-reduction additions; a full modular exponentiation is ``2n``
such multiplications back to back.

Building the literal circuit for 1024-bit inputs (billions of gates) is
neither necessary nor useful — all architecture results consume the
workload through the counts and the representative adder circuit exposed
here.  Small instances can still be materialized as real gate sequences
for the cache simulator via :func:`modexp_addition_trace`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

from .circuit import Circuit
from .draper import AdderStats, adder_stats, carry_lookahead_adder

#: Extra serial additions per multiplication step for modular reduction
#: (subtract-modulus / compare / correct), a documented constant of the
#: workload model.
MODULAR_REDUCTION_ADDS = 3

#: Logical qubits needed for an n-bit modular exponentiation: the 2n-bit
#: exponent register plus multiplicand, accumulator and carry/scratch
#: space (~5n, cf. Beckman et al.-style layouts).
QUBITS_PER_BIT = 5


def modexp_logical_qubits(n_bits: int) -> int:
    """Logical data qubits a modular exponentiation instance occupies."""
    if n_bits < 2:
        raise ValueError("modular exponentiation needs at least 2 bits")
    return QUBITS_PER_BIT * n_bits


def serial_adder_depth(n_bits: int) -> int:
    """Sequential adder slots on the critical path of a modexp.

    ``2n`` controlled multiplications, each a log-tree of conditional
    additions plus modular reduction.
    """
    if n_bits < 2:
        raise ValueError("modular exponentiation needs at least 2 bits")
    per_multiply = math.ceil(math.log2(n_bits)) + MODULAR_REDUCTION_ADDS
    return 2 * n_bits * per_multiply


def total_additions(n_bits: int) -> int:
    """Total (not serial) additions across the modular exponentiation."""
    if n_bits < 2:
        raise ValueError("modular exponentiation needs at least 2 bits")
    per_multiply = n_bits + MODULAR_REDUCTION_ADDS
    return 2 * n_bits * per_multiply


@dataclass(frozen=True)
class ModExpWorkload:
    """Shape summary of one modular-exponentiation instance."""

    n_bits: int
    adder: AdderStats

    @staticmethod
    def for_bits(n_bits: int) -> "ModExpWorkload":
        return ModExpWorkload(n_bits=n_bits, adder=cached_adder_stats(n_bits))

    @property
    def logical_qubits(self) -> int:
        return modexp_logical_qubits(self.n_bits)

    @property
    def serial_adders(self) -> int:
        return serial_adder_depth(self.n_bits)

    @property
    def total_adders(self) -> int:
        return total_additions(self.n_bits)

    @property
    def toffolis_per_adder(self) -> int:
        return self.adder.toffoli_count

    @property
    def gates_per_adder(self) -> int:
        return self.adder.gate_count


@lru_cache(maxsize=None)
def cached_adder_stats(n_bits: int) -> AdderStats:
    """Adder statistics, cached — 1024-bit builds take a few seconds."""
    return adder_stats(n_bits)


def modexp_addition_trace(n_bits: int, n_adders: int = 3) -> Circuit:
    """A short, real gate trace: ``n_adders`` back-to-back additions.

    Used by the cache simulator and examples as a concrete instruction
    stream with modexp-like locality (the accumulator register is reused
    across additions, the carry/scratch registers are re-touched).
    """
    if n_adders < 1:
        raise ValueError("need at least one addition")
    adder = carry_lookahead_adder(n_bits)
    base = adder.circuit
    trace = Circuit(n_qubits=base.n_qubits, name=f"modexp-trace-{n_bits}")
    for _ in range(n_adders):
        trace.extend(base.gates)
    return trace
