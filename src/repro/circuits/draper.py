"""The Draper carry-lookahead quantum adder (quant-ph/0406142).

The basic component of the paper's quantum modular exponentiation: an
adder ``|a>|b> -> |a>|a+b>`` built from X, CNOT and Toffoli gates with
logarithmic Toffoli depth.  Carries are computed by a Brent-Kung prefix
network over (generate, propagate) pairs, organized — exactly as Draper
et al. present it — in *rounds*:

* **init**:  ``g_i = a_i AND b_i`` into the carry register (Toffoli),
  ``p_i = a_i XOR b_i`` in place of ``b_i`` (CNOT);
* **P rounds** (one per tree level): propagate products over
  power-of-two blocks into tree ancilla;
* **G rounds**: carries at block boundaries;
* **C rounds** (levels descending): remaining interior carries;
* **inverse P rounds**: return the tree ancilla to zero;
* **sum**: ``s_i = p_i XOR c_i``.

Rounds are global steps of the generated code (the paper's generators
emit round-structured programs), so each gate carries a *stage* index
and schedulers treat stage boundaries as barriers.  This gives the
published Toffoli depth of ``4 lg n + O(1)``.

For the in-place variant the carry register is erased by the *mirror*
network evaluated on ``(a, NOT s)``, using the identity
``carries(a, NOT s) == carries(a, b)`` — Draper et al.'s erasure rounds.
The high carry ``c_n`` (the n+1-st sum bit) is preserved by restricting
the mirror to the low ``n-1`` positions.

Functional correctness (including ancilla cleanliness) is established
in the test suite by classical simulation over random operands.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from .circuit import Circuit
from .gates import Gate, cnot_gate, toffoli_gate, x_gate

TreeOp = Tuple[str, int, int]  # ("P" | "G" | "C", t, m)


def _tree_levels(n: int) -> int:
    return max(n.bit_length() - 1, 0)


def _p_level_ops(n: int, t: int) -> List[TreeOp]:
    return [("P", t, m) for m in range(n >> t)]


def _g_level_ops(n: int, t: int) -> List[TreeOp]:
    return [("G", t, m) for m in range(n >> t)]


def _c_level_ops(n: int, t: int) -> List[TreeOp]:
    m_max = (n - (1 << (t - 1))) >> t
    return [("C", t, m) for m in range(1, m_max + 1)]


@dataclass
class AdderLayout:
    """Qubit-id assignment for one carry-lookahead adder instance.

    Registers: ``a`` (first operand, preserved), ``b`` (second operand,
    replaced by the sum), ``z`` (carries ``c_1 .. c_n``; ``z[n]`` is the
    carry-out and remains set after the in-place adder), and the
    propagate-tree ancilla ``p_tree[(t, m)]``.
    """

    n: int
    a: List[int] = field(default_factory=list)
    b: List[int] = field(default_factory=list)
    z: List[int] = field(default_factory=list)
    p_tree: Dict[Tuple[int, int], int] = field(default_factory=dict)

    @staticmethod
    def allocate(n: int) -> "AdderLayout":
        if n < 2:
            raise ValueError("adder width must be at least 2 bits")
        layout = AdderLayout(n=n)
        next_id = 0

        def take(count: int) -> List[int]:
            nonlocal next_id
            ids = list(range(next_id, next_id + count))
            next_id += count
            return ids

        layout.a = take(n)
        layout.b = take(n)
        layout.z = take(n)  # z[i] holds carry c_{i+1}
        for t in range(1, _tree_levels(n) + 1):
            for m in range(n >> t):
                layout.p_tree[(t, m)] = take(1)[0]
        return layout

    @property
    def n_qubits(self) -> int:
        return 3 * self.n + len(self.p_tree)

    def carry(self, j: int) -> int:
        """Qubit id holding carry ``c_j`` (1-indexed)."""
        if not 1 <= j <= self.n:
            raise ValueError("carry index out of range")
        return self.z[j - 1]

    def p_node(self, t: int, m: int) -> int:
        """Qubit id of propagate block ``P_t[m]``; ``P_0[i]`` is b[i]."""
        if t == 0:
            return self.b[m]
        return self.p_tree[(t, m)]

    @property
    def carry_out(self) -> int:
        """Qubit id of the carry-out bit ``c_n``."""
        return self.carry(self.n)


class _StagedBuilder:
    """Accumulates gates with round (stage) annotations."""

    def __init__(self, layout: AdderLayout, name: str) -> None:
        self.layout = layout
        self.circuit = Circuit(n_qubits=layout.n_qubits, name=name)
        self.stages: List[int] = []
        self._stage = 0
        self._emitted_in_stage = 0

    def gate(self, gate: Gate) -> None:
        self.circuit.append(gate)
        self.stages.append(self._stage)
        self._emitted_in_stage += 1

    def barrier(self) -> None:
        """End the current round (no-op when the round is empty)."""
        if self._emitted_in_stage:
            self._stage += 1
            self._emitted_in_stage = 0

    def tree_op(self, op: TreeOp) -> None:
        layout = self.layout
        kind, t, m = op
        if kind == "P":
            self.gate(toffoli_gate(
                layout.p_node(t - 1, 2 * m),
                layout.p_node(t - 1, 2 * m + 1),
                layout.p_node(t, m),
            ))
        elif kind == "G":
            lo = (m << t) + (1 << (t - 1))
            hi = (m + 1) << t
            self.gate(toffoli_gate(
                layout.carry(lo),
                layout.p_node(t - 1, 2 * m + 1),
                layout.carry(hi),
            ))
        elif kind == "C":
            base = m << t
            target = base + (1 << (t - 1))
            self.gate(toffoli_gate(
                layout.carry(base),
                layout.p_node(t - 1, 2 * m),
                layout.carry(target),
            ))
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown tree op {kind!r}")

    def tree_round(self, ops: Sequence[TreeOp]) -> None:
        for op in ops:
            self.tree_op(op)
        self.barrier()


@dataclass(frozen=True)
class DraperAdder:
    """A constructed adder: circuit, register layout, round stages."""

    layout: AdderLayout
    circuit: Circuit
    stages: Tuple[int, ...]
    in_place: bool

    @property
    def n(self) -> int:
        return self.layout.n

    @property
    def n_rounds(self) -> int:
        return (self.stages[-1] + 1) if self.stages else 0

    def add(self, a_value: int, b_value: int) -> Tuple[int, List[int]]:
        """Classically execute the adder; return (sum, final bits)."""
        n = self.n
        if not 0 <= a_value < (1 << n) or not 0 <= b_value < (1 << n):
            raise ValueError("operands must fit the adder width")
        bits = [0] * self.circuit.n_qubits
        for i in range(n):
            bits[self.layout.a[i]] = (a_value >> i) & 1
            bits[self.layout.b[i]] = (b_value >> i) & 1
        final = self.circuit.simulate_classical(bits)
        total = sum(final[self.layout.b[i]] << i for i in range(n))
        total += final[self.layout.carry_out] << n
        return total, final


def carry_lookahead_adder(n: int, in_place: bool = True) -> DraperAdder:
    """Build an ``n``-bit Draper carry-lookahead adder.

    ``in_place=True`` (the default) erases the interior carries and the
    propagate tree, leaving only ``a``, the sum in ``b`` and the
    carry-out; ``in_place=False`` stops after the sum step, leaving the
    carry register dirty (the steady-state form when carry registers are
    recycled across an addition tree).
    """
    layout = AdderLayout.allocate(n)
    builder = _StagedBuilder(layout, name=f"draper-{n}")
    levels = _tree_levels(n)

    # init rounds: g into z, then p into b
    for i in range(n):
        builder.gate(toffoli_gate(layout.a[i], layout.b[i], layout.carry(i + 1)))
    builder.barrier()
    for i in range(n):
        builder.gate(cnot_gate(layout.a[i], layout.b[i]))
    builder.barrier()

    # P rounds, G rounds, C rounds, inverse P rounds
    for t in range(1, levels + 1):
        builder.tree_round(_p_level_ops(n, t))
    for t in range(1, levels + 1):
        builder.tree_round(_g_level_ops(n, t))
    for t in range(levels, 0, -1):
        builder.tree_round(_c_level_ops(n, t))
    for t in range(levels, 0, -1):
        builder.tree_round(_p_level_ops(n, t))  # Toffolis are self-inverse

    # sum round: s_i = p_i XOR c_i for i >= 1 (s_0 = p_0 already)
    for i in range(1, n):
        builder.gate(cnot_gate(layout.carry(i), layout.b[i]))
    builder.barrier()

    if not in_place:
        return DraperAdder(
            layout=layout,
            circuit=builder.circuit,
            stages=tuple(builder.stages),
            in_place=False,
        )

    # Erasure of carries c_1 .. c_{n-1} via the mirror network on
    # (a, NOT s) restricted to the low n-1 bits; c_n is the carry-out
    # and is kept.
    n_low = n - 1
    low_levels = _tree_levels(n_low)
    for i in range(n_low):
        builder.gate(x_gate(layout.b[i]))            # s -> NOT s
    builder.barrier()
    for i in range(n_low):
        builder.gate(cnot_gate(layout.a[i], layout.b[i]))  # -> p'
    builder.barrier()
    for t in range(1, low_levels + 1):               # P' rounds
        builder.tree_round(_p_level_ops(n_low, t))
    for t in range(1, low_levels + 1):               # inverse C rounds
        builder.tree_round(list(reversed(_c_level_ops(n_low, t))))
    for t in range(low_levels, 0, -1):               # inverse G rounds
        builder.tree_round(list(reversed(_g_level_ops(n_low, t))))
    for t in range(low_levels, 0, -1):               # P' uncompute
        builder.tree_round(_p_level_ops(n_low, t))
    for i in range(n_low):
        builder.gate(cnot_gate(layout.a[i], layout.b[i]))  # p' -> NOT s
    builder.barrier()
    for i in range(n_low):
        builder.gate(toffoli_gate(layout.a[i], layout.b[i], layout.carry(i + 1)))
    builder.barrier()
    for i in range(n_low):
        builder.gate(x_gate(layout.b[i]))            # NOT s -> s
    builder.barrier()
    return DraperAdder(
        layout=layout,
        circuit=builder.circuit,
        stages=tuple(builder.stages),
        in_place=True,
    )


@dataclass(frozen=True)
class AdderStats:
    """Size/shape statistics of one adder instance."""

    n: int
    n_qubits: int
    gate_count: int
    toffoli_count: int
    cnot_count: int
    n_rounds: int
    depth_levels: int
    critical_path_slots: int
    max_parallelism: int

    @property
    def total_ec_slots(self) -> int:
        return 15 * self.toffoli_count + (self.gate_count - self.toffoli_count)


def adder_stats(n: int, in_place: bool = True) -> AdderStats:
    """Build an adder and summarize it (cached upstream by callers)."""
    from .dag import CircuitDag
    from .gates import GateKind

    adder = carry_lookahead_adder(n, in_place=in_place)
    dag = CircuitDag.build(adder.circuit)
    return AdderStats(
        n=n,
        n_qubits=adder.circuit.n_qubits,
        gate_count=len(adder.circuit),
        toffoli_count=adder.circuit.toffoli_count,
        cnot_count=adder.circuit.count(GateKind.CNOT),
        n_rounds=adder.n_rounds,
        depth_levels=dag.depth(),
        critical_path_slots=dag.critical_path_slots(),
        max_parallelism=dag.max_parallelism(),
    )
