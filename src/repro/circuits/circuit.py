"""Logical-circuit container with classical simulation support.

A :class:`Circuit` is an ordered gate list over ``n_qubits`` logical
qubits.  Circuits built from classical reversible gates (X / CNOT /
Toffoli) can be executed directly on computational-basis states, which
is how the test suite proves the Draper adder actually adds.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from .gates import Gate, GateKind


@dataclass
class Circuit:
    """An ordered logical-gate program."""

    n_qubits: int
    gates: List[Gate] = field(default_factory=list)
    name: str = ""

    def __post_init__(self) -> None:
        if self.n_qubits <= 0:
            raise ValueError("a circuit needs at least one qubit")
        for gate in self.gates:
            self._check(gate)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _check(self, gate: Gate) -> None:
        if max(gate.qubits) >= self.n_qubits:
            raise ValueError(
                f"gate {gate.label()} outside circuit of {self.n_qubits} qubits"
            )

    def append(self, gate: Gate) -> None:
        self._check(gate)
        self.gates.append(gate)

    def extend(self, gates: Iterable[Gate]) -> None:
        for gate in gates:
            self.append(gate)

    def __len__(self) -> int:
        return len(self.gates)

    def __iter__(self) -> Iterator[Gate]:
        return iter(self.gates)

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def gate_counts(self) -> Dict[GateKind, int]:
        counts: Dict[GateKind, int] = {}
        for gate in self.gates:
            counts[gate.kind] = counts.get(gate.kind, 0) + 1
        return counts

    def count(self, kind: GateKind) -> int:
        return sum(1 for g in self.gates if g.kind is kind)

    @property
    def toffoli_count(self) -> int:
        return self.count(GateKind.TOFFOLI)

    def total_ec_slots(self) -> int:
        """Total work in gate-EC periods (the paper's time unit)."""
        return sum(g.ec_slots for g in self.gates)

    def is_classical(self) -> bool:
        return all(g.kind.is_classical for g in self.gates)

    def touched_qubits(self) -> List[int]:
        seen = set()
        for gate in self.gates:
            seen.update(gate.qubits)
        return sorted(seen)

    def operand_trace(self, order: Optional[Sequence[int]] = None) -> List[int]:
        """The flattened operand stream of the (scheduled) program.

        ``order`` is a gate-index permutation (e.g. the optimized fetch
        schedule); ``None`` takes program order.  Quantum programs are
        fully scheduled at compile time, so this trace is static — it
        is the lookahead substrate for the score/Belady eviction
        policies and for exact prefetching.
        """
        gates = self.gates
        if order is None:
            return [q for g in gates for q in g.qubits]
        return [q for idx in order for q in gates[idx].qubits]

    # ------------------------------------------------------------------
    # classical simulation
    # ------------------------------------------------------------------
    def simulate_classical(self, bits: Sequence[int]) -> List[int]:
        """Run a reversible classical circuit on a basis state.

        ``bits[q]`` is the initial value of qubit ``q``; the final bit
        vector is returned.  Raises for circuits containing non-classical
        gates.
        """
        if len(bits) != self.n_qubits:
            raise ValueError("bit vector length must equal qubit count")
        state = [int(b) & 1 for b in bits]
        for gate in self.gates:
            if gate.kind is GateKind.X:
                (q,) = gate.qubits
                state[q] ^= 1
            elif gate.kind is GateKind.CNOT:
                c, t = gate.qubits
                state[t] ^= state[c]
            elif gate.kind is GateKind.TOFFOLI:
                c1, c2, t = gate.qubits
                state[t] ^= state[c1] & state[c2]
            else:
                raise ValueError(
                    f"gate {gate.label()} is not classically simulable"
                )
        return state

    # ------------------------------------------------------------------
    # composition
    # ------------------------------------------------------------------
    def concatenate(self, other: "Circuit", name: str = "") -> "Circuit":
        """Sequential composition (qubit spaces must match)."""
        if other.n_qubits != self.n_qubits:
            raise ValueError("circuits act on different qubit counts")
        return Circuit(
            n_qubits=self.n_qubits,
            gates=list(self.gates) + list(other.gates),
            name=name or f"{self.name}+{other.name}",
        )

    def reversed_classical(self) -> "Circuit":
        """The inverse of a self-inverse-gate (classical) circuit."""
        if not self.is_classical():
            raise ValueError("only classical circuits can be auto-reversed")
        return Circuit(
            n_qubits=self.n_qubits,
            gates=list(reversed(self.gates)),
            name=f"{self.name}^-1",
        )


#: Sentinel "never used again" distance for trace lookahead.
NEVER_USED = math.inf


@dataclass(frozen=True)
class TraceIndex:
    """Next-use lookup over a flattened operand trace.

    The index inverts a trace (see :meth:`Circuit.operand_trace`) into
    per-qubit sorted position lists, so "when is ``qubit`` next used
    after position ``pos``?" is one bisect.  This is the shared
    lookahead metadata behind Belady replacement and exact prefetching:
    the schedule is static, so next-use distances are compile-time
    facts, not oracle knowledge.
    """

    trace: Tuple[int, ...]
    positions: Dict[int, List[int]]

    @classmethod
    def build(cls, trace: Sequence[int]) -> "TraceIndex":
        positions: Dict[int, List[int]] = {}
        for i, q in enumerate(trace):
            positions.setdefault(q, []).append(i)
        return cls(trace=tuple(trace), positions=positions)

    def next_use(self, qubit: int, pos: int) -> float:
        """Trace position of ``qubit``'s first use after ``pos``.

        Returns :data:`NEVER_USED` when the qubit is never touched
        again (or never appears in the trace at all).
        """
        uses = self.positions.get(qubit)
        if not uses:
            return NEVER_USED
        idx = bisect_right(uses, pos)
        return uses[idx] if idx < len(uses) else NEVER_USED

    def use_count(self, qubit: int) -> int:
        """Total uses of ``qubit`` across the whole trace."""
        return len(self.positions.get(qubit, ()))
