"""Logical circuits: gate IR, DAG analysis, workload generators, ISA.

This package owns everything the simulators consume as *programs*:
the :class:`Circuit` gate IR and its operand traces
(:mod:`repro.circuits.circuit`), dependency analysis
(:mod:`repro.circuits.dag`), the concrete generators — Draper
carry-lookahead adder, QFT, Shor modular exponentiation — and the
workload registry (:mod:`repro.circuits.workloads`) that gives sweeps
stable names and memoization keys.  :mod:`repro.circuits.isa` is the
cache-control instruction encoding.  Circuits are code-agnostic:
encoding choices enter only when a circuit meets a
:class:`repro.sim.levels.HierarchyStack`.
"""

from .circuit import Circuit
from .dag import CircuitDag, operand_stream, parallelism_series
from .draper import (
    AdderLayout,
    AdderStats,
    DraperAdder,
    adder_stats,
    carry_lookahead_adder,
)
from .gates import (
    Gate,
    GateKind,
    TOFFOLI_TRAFFIC_QUBITS,
    cnot_gate,
    cphase_gate,
    h_gate,
    toffoli_gate,
    x_gate,
)
from .isa import IsaError, assemble, assemble_line, disassemble, round_trip
from .modexp import (
    ModExpWorkload,
    cached_adder_stats,
    modexp_addition_trace,
    modexp_logical_qubits,
    serial_adder_depth,
    total_additions,
)
from .qft import QftCommunication, qft_circuit, qft_gate_counts
from .shor import ShorEstimate, shor_estimate, shor_kq
from .workloads import (
    WorkloadSpec,
    available_workloads,
    build_workload,
    get_workload,
    register_workload,
)

__all__ = [
    "AdderLayout",
    "AdderStats",
    "Circuit",
    "CircuitDag",
    "DraperAdder",
    "Gate",
    "GateKind",
    "IsaError",
    "ModExpWorkload",
    "QftCommunication",
    "ShorEstimate",
    "TOFFOLI_TRAFFIC_QUBITS",
    "WorkloadSpec",
    "shor_estimate",
    "shor_kq",
    "adder_stats",
    "assemble",
    "available_workloads",
    "build_workload",
    "get_workload",
    "register_workload",
    "assemble_line",
    "cached_adder_stats",
    "carry_lookahead_adder",
    "cnot_gate",
    "cphase_gate",
    "disassemble",
    "h_gate",
    "modexp_addition_trace",
    "modexp_logical_qubits",
    "operand_stream",
    "parallelism_series",
    "qft_circuit",
    "qft_gate_counts",
    "round_trip",
    "serial_adder_depth",
    "toffoli_gate",
    "total_additions",
    "x_gate",
]
