"""Workload registry: named circuit generators for the hierarchy engine.

The engine (:func:`repro.sim.levels.simulate_hierarchy_run`) accepts
any :class:`~repro.circuits.circuit.Circuit`; this registry gives the
sweeps, benchmarks and examples a common vocabulary of named workloads
so a design-space cell can be keyed (and memoized) by ``(workload
name, n_bits)`` instead of by an arbitrary gate list.

Shipped workloads:

* ``draper_adder`` — the paper's evaluation workload, one Draper
  carry-lookahead addition in its steady-state (``in_place=False``)
  form, exactly the circuit the Table 5 simulator runs;
* ``qft`` — the quantum Fourier transform, the paper's communication
  stress test (all-to-all operand pairs, very low reuse distance);
* ``modexp_trace`` — back-to-back additions with modular-exponentiation
  locality (accumulator and carry registers re-touched across adders).

Register new workloads with :func:`register_workload`; builders take
one ``n_bits`` size parameter and return a fresh ``Circuit``.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from .circuit import Circuit
from .draper import carry_lookahead_adder
from .modexp import modexp_addition_trace
from .qft import qft_circuit


@dataclass(frozen=True)
class WorkloadSpec:
    """A named circuit generator plus its default problem size."""

    name: str
    description: str
    default_bits: int
    builder: Callable[[int], Circuit]

    def build(self, n_bits: Optional[int] = None) -> Circuit:
        """Materialize the workload at ``n_bits`` (default size if None)."""
        bits = self.default_bits if n_bits is None else n_bits
        return self.builder(bits)


_REGISTRY: "OrderedDict[str, WorkloadSpec]" = OrderedDict()


def register_workload(
    name: str, description: str, default_bits: int
) -> Callable[[Callable[[int], Circuit]], Callable[[int], Circuit]]:
    """Decorator registering a ``builder(n_bits) -> Circuit`` function."""
    def decorate(builder: Callable[[int], Circuit]):
        if name in _REGISTRY:
            raise ValueError(f"workload {name!r} is already registered")
        _REGISTRY[name] = WorkloadSpec(
            name=name, description=description,
            default_bits=default_bits, builder=builder,
        )
        return builder
    return decorate


def get_workload(name: str) -> WorkloadSpec:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; registered workloads: "
            f"{', '.join(available_workloads())}"
        ) from None


def available_workloads() -> Tuple[str, ...]:
    """All registered workload names, in registration order."""
    return tuple(_REGISTRY)


def build_workload(name: str, n_bits: Optional[int] = None) -> Circuit:
    """Build a registered workload at ``n_bits`` (its default if None)."""
    return get_workload(name).build(n_bits)


@register_workload(
    "draper_adder",
    "one Draper carry-lookahead addition (steady-state form)",
    default_bits=64,
)
def _draper_workload(n_bits: int) -> Circuit:
    return carry_lookahead_adder(n_bits, in_place=False).circuit


@register_workload(
    "qft",
    "exact quantum Fourier transform (all-to-all communication)",
    default_bits=48,
)
def _qft_workload(n_bits: int) -> Circuit:
    return qft_circuit(n_bits)


@register_workload(
    "modexp_trace",
    "back-to-back additions with modular-exponentiation locality",
    default_bits=16,
)
def _modexp_workload(n_bits: int) -> Circuit:
    return modexp_addition_trace(n_bits)
