"""Assembly-like instruction format for the cache simulator (Section 5.2).

The paper's cache simulator consumes "a sequence of instructions; each
instruction is similar to assembly language and describes a logical gate
between qubits".  This module defines that textual format and converts
circuits to and from it:

    toffoli q0 q64 q128
    cnot q0 q64
    cphase q3 q2 5
    h q1

Whitespace separates tokens; lines starting with ``#`` are comments.
"""

from __future__ import annotations

from typing import Iterable, List

from .circuit import Circuit
from .gates import Gate, GateKind

_KIND_BY_NAME = {kind.value: kind for kind in GateKind}


class IsaError(ValueError):
    """Raised on malformed ISA text."""


def assemble_line(line: str) -> Gate:
    """Parse one instruction line into a :class:`Gate`."""
    tokens = line.split()
    if not tokens:
        raise IsaError("empty instruction")
    name = tokens[0].lower()
    if name not in _KIND_BY_NAME:
        raise IsaError(f"unknown mnemonic {name!r}")
    kind = _KIND_BY_NAME[name]
    qubit_tokens = tokens[1:1 + kind.n_qubits]
    if len(qubit_tokens) != kind.n_qubits:
        raise IsaError(f"{name} expects {kind.n_qubits} qubit operands")
    qubits = []
    for tok in qubit_tokens:
        if not tok.startswith("q") or not tok[1:].isdigit():
            raise IsaError(f"bad qubit operand {tok!r}")
        qubits.append(int(tok[1:]))
    rest = tokens[1 + kind.n_qubits:]
    param = 0
    if kind is GateKind.CPHASE:
        if len(rest) != 1 or not rest[0].isdigit():
            raise IsaError("cphase expects a rotation-order parameter")
        param = int(rest[0])
    elif rest:
        raise IsaError(f"trailing tokens on {name}: {rest}")
    return Gate(kind, tuple(qubits), param=param)


def assemble(text: str, n_qubits: int = 0, name: str = "") -> Circuit:
    """Parse a whole program; infer the qubit count unless given."""
    gates: List[Gate] = []
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        gates.append(assemble_line(line))
    if not gates and n_qubits == 0:
        raise IsaError("program has no instructions and no qubit count")
    needed = 1 + max((max(g.qubits) for g in gates), default=0)
    total = max(n_qubits, needed)
    return Circuit(n_qubits=total, gates=gates, name=name)


def disassemble(circuit: Circuit) -> str:
    """Render a circuit as ISA text (one instruction per line)."""
    header = f"# {circuit.name or 'circuit'}: {circuit.n_qubits} qubits\n"
    return header + "\n".join(g.label() for g in circuit.gates) + "\n"


def round_trip(circuit: Circuit) -> Circuit:
    """assemble(disassemble(c)) — used by tests and format checks."""
    return assemble(disassemble(circuit), n_qubits=circuit.n_qubits,
                    name=circuit.name)


def write_program(path: str, circuit: Circuit) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(disassemble(circuit))


def read_program(path: str, n_qubits: int = 0) -> Circuit:
    with open(path, "r", encoding="utf-8") as handle:
        return assemble(handle.read(), n_qubits=n_qubits)


def gates_from_lines(lines: Iterable[str]) -> List[Gate]:
    """Parse an iterable of instruction lines (streaming interface)."""
    gates = []
    for raw in lines:
        line = raw.split("#", 1)[0].strip()
        if line:
            gates.append(assemble_line(line))
    return gates
