"""Dependency analysis of logical circuits.

Builds the data-dependency DAG of a circuit (two gates conflict when
they share a qubit) and derives the quantities the paper's parallelism
study needs: ASAP levels, the dependence-only parallelism profile
(Figure 2's "unlimited resources" curve), critical-path length and
per-gate priorities for list scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from .circuit import Circuit
from .gates import Gate


@dataclass
class CircuitDag:
    """Dependency structure of one circuit.

    ``preds[i]``/``succs[i]`` are indices of gates immediately before /
    after gate ``i`` on some shared qubit; duplicates are removed.
    """

    circuit: Circuit
    preds: List[List[int]]
    succs: List[List[int]]

    @staticmethod
    def build(circuit: Circuit) -> "CircuitDag":
        last_writer: Dict[int, int] = {}
        preds: List[List[int]] = []
        succs: List[List[int]] = [[] for _ in circuit.gates]
        for i, gate in enumerate(circuit.gates):
            gate_preds = sorted({
                last_writer[q] for q in gate.qubits if q in last_writer
            })
            preds.append(gate_preds)
            for p in gate_preds:
                succs[p].append(i)
            for q in gate.qubits:
                last_writer[q] = i
        return CircuitDag(circuit=circuit, preds=preds, succs=succs)

    # ------------------------------------------------------------------
    # levels and profiles
    # ------------------------------------------------------------------
    def asap_levels(self) -> List[int]:
        """Earliest dependence level of each gate (unit gate latency)."""
        levels: List[int] = []
        for i in range(len(self.circuit.gates)):
            if self.preds[i]:
                levels.append(1 + max(levels[p] for p in self.preds[i]))
            else:
                levels.append(0)
        return levels

    def asap_start_slots(self) -> List[int]:
        """Earliest start in EC slots, honoring gate durations.

        A Toffoli occupies fifteen slots, everything else one — this is
        the weighted critical-path schedule with unlimited resources.
        """
        starts: List[int] = []
        finish: List[int] = []
        for i, gate in enumerate(self.circuit.gates):
            start = 0
            for p in self.preds[i]:
                start = max(start, finish[p])
            starts.append(start)
            finish.append(start + gate.ec_slots)
        return starts

    def depth(self) -> int:
        """Dependence depth in unit-gate levels."""
        levels = self.asap_levels()
        return (max(levels) + 1) if levels else 0

    def critical_path_slots(self) -> int:
        """Weighted critical path in EC slots (unlimited resources)."""
        if not self.circuit.gates:
            return 0
        starts = self.asap_start_slots()
        return max(
            s + g.ec_slots for s, g in zip(starts, self.circuit.gates)
        )

    def parallelism_profile(self) -> List[int]:
        """Gates in flight per unit level with unlimited resources.

        This is Figure 2's "Unlimited Resources" series: the histogram
        of gates over ASAP levels.
        """
        levels = self.asap_levels()
        if not levels:
            return []
        profile = [0] * (max(levels) + 1)
        for lvl in levels:
            profile[lvl] += 1
        return profile

    def max_parallelism(self) -> int:
        profile = self.parallelism_profile()
        return max(profile) if profile else 0

    # ------------------------------------------------------------------
    # scheduling support
    # ------------------------------------------------------------------
    def downstream_slack(self) -> List[int]:
        """Critical-path-to-exit of each gate in EC slots.

        Used as the list-scheduling priority: gates with the longest
        remaining dependent work schedule first.
        """
        n = len(self.circuit.gates)
        slack = [0] * n
        for i in range(n - 1, -1, -1):
            gate = self.circuit.gates[i]
            tail = max((slack[s] for s in self.succs[i]), default=0)
            slack[i] = gate.ec_slots + tail
        return slack

    def ready_at_start(self) -> List[int]:
        return [i for i, p in enumerate(self.preds) if not p]


def parallelism_series(circuit: Circuit) -> List[int]:
    """Convenience wrapper: Figure 2 profile for a circuit."""
    return CircuitDag.build(circuit).parallelism_profile()


def operand_stream(circuit: Circuit) -> Sequence[Gate]:
    """The gate sequence in program order (cache-simulator input)."""
    return tuple(circuit.gates)
