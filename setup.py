"""Setup shim for legacy editable installs (offline environments).

The canonical metadata lives in ``pyproject.toml``; this file only
enables ``pip install -e . --no-use-pep517`` where the ``wheel`` package
is unavailable.
"""

from setuptools import setup

setup()
